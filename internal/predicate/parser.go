package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/vclock"
)

// Parse parses a predicate in the thesis's syntax (§4.3.1), e.g.
//
//	((StateMachine1, State1, 10 < t < 20) | (StateMachine2, State2, 30 < t < 40))
//	((StateMachine3, State3, Event3, 10 < t < 30))
//	(StateMachine5, State5, Event5) | (StateMachine6, State6, 10 < t < 40)
//
// Tuples are parenthesized comma-separated lists: machine, state, optional
// event, optional time. Times are in milliseconds, written either as an
// interval "a < t < b" or an instant "t = a". Operators are '&', '|', '~'
// with the same precedence as fault expressions (NOT > AND > OR).
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("predicate: at offset %d of %q: %s", p.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '&' {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	p.skipSpace()
	switch p.peek() {
	case 0:
		return nil, p.errorf("unexpected end of predicate")
	case '~', '!':
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case '(':
		return p.parseGroupOrTuple()
	default:
		return nil, p.errorf("expected '(', '~'")
	}
}

// parseGroupOrTuple disambiguates "(expr)" from "(machine, state, ...)":
// a tuple has a comma before any nested parenthesis.
func (p *parser) parseGroupOrTuple() (Expr, error) {
	open := p.pos
	depth := 0
	isTuple := false
scan:
	for i := p.pos; i < len(p.src); i++ {
		switch p.src[i] {
		case '(':
			depth++
			if depth == 2 {
				break scan // nested group: not a tuple
			}
		case ')':
			depth--
			if depth == 0 {
				break scan
			}
		case ',':
			if depth == 1 {
				isTuple = true
				break scan
			}
		}
	}
	if isTuple {
		return p.parseTuple()
	}
	p.pos++ // consume '('
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != ')' {
		return nil, p.errorf("expected ')' to close group opened at offset %d", open)
	}
	p.pos++
	return e, nil
}

func (p *parser) parseTuple() (Expr, error) {
	p.pos++ // consume '('
	var fields []string
	start := p.pos
	depth := 1
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' {
			depth++
		}
		if c == ')' {
			depth--
			if depth == 0 {
				fields = append(fields, strings.TrimSpace(p.src[start:p.pos]))
				p.pos++
				return buildTuple(fields)
			}
		}
		if c == ',' && depth == 1 {
			fields = append(fields, strings.TrimSpace(p.src[start:p.pos]))
			start = p.pos + 1
		}
		p.pos++
	}
	return nil, p.errorf("unterminated tuple")
}

func buildTuple(fields []string) (Expr, error) {
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("predicate: tuple needs 2-4 fields, got %d: %v", len(fields), fields)
	}
	t := Tuple{Machine: fields[0], State: fields[1]}
	rest := fields[2:]
	// The optional third field is an event unless it parses as a time.
	if len(rest) > 0 {
		if tc, ok, err := parseTime(rest[0]); ok {
			if err != nil {
				return nil, err
			}
			if len(rest) > 1 {
				return nil, fmt.Errorf("predicate: fields after time constraint in tuple %v", fields)
			}
			t.HasTime, t.Time = true, tc
			rest = nil
		} else {
			t.Event = rest[0]
			rest = rest[1:]
		}
	}
	if len(rest) > 0 {
		tc, ok, err := parseTime(rest[0])
		if !ok || err != nil {
			if err == nil {
				err = fmt.Errorf("predicate: fourth tuple field %q is not a time constraint", rest[0])
			}
			return nil, err
		}
		t.HasTime, t.Time = true, tc
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseTime recognizes "a < t < b", "t = a", and "a <= t <= b" forms with
// millisecond numbers. ok is false when the field does not look like a time
// constraint at all (so it can be an event name); err is non-nil when it
// looks like one but is malformed.
func parseTime(s string) (TimeConstraint, bool, error) {
	if !strings.ContainsAny(s, "<=") {
		return TimeConstraint{}, false, nil
	}
	norm := strings.ReplaceAll(s, "<=", "<")
	if eq := strings.Index(norm, "="); eq >= 0 && !strings.Contains(norm, "<") {
		// "t = a"
		lhs := strings.TrimSpace(norm[:eq])
		if lhs != "t" {
			return TimeConstraint{}, true, fmt.Errorf("predicate: bad instant constraint %q", s)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(norm[eq+1:]), 64)
		if err != nil {
			return TimeConstraint{}, true, fmt.Errorf("predicate: bad instant %q", s)
		}
		at := vclock.FromMillis(v)
		return TimeConstraint{Lo: at, Hi: at}, true, nil
	}
	parts := strings.Split(norm, "<")
	if len(parts) != 3 || strings.TrimSpace(parts[1]) != "t" {
		return TimeConstraint{}, true, fmt.Errorf("predicate: bad time constraint %q (want 'a < t < b')", s)
	}
	lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err1 != nil || err2 != nil {
		return TimeConstraint{}, true, fmt.Errorf("predicate: bad bounds in time constraint %q", s)
	}
	return TimeConstraint{Lo: vclock.FromMillis(lo), Hi: vclock.FromMillis(hi)}, true, nil
}
