package predicate

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// TimeConstraint restricts a tuple to an instant or an interval (§4.3.1:
// "The time can be either an instant or a time interval").
type TimeConstraint struct {
	// Lo and Hi bound the interval; for an instant, Lo == Hi.
	Lo, Hi vclock.Ticks
}

// IsInstant reports whether the constraint is a single instant.
func (tc TimeConstraint) IsInstant() bool { return tc.Lo == tc.Hi }

// Expr is a predicate: tuples combined with AND, OR, and NOT (§4.3.1).
type Expr interface {
	// Eval computes the predicate value timeline over the global timeline
	// g, using [horizonLo, horizonHi) as the truth horizon for negation.
	Eval(g *analysis.Global, horizonLo, horizonHi vclock.Ticks) PVT
	// String renders the predicate in the thesis's source syntax.
	String() string
}

// Tuple is the §4.3.1 leaf. Event == "" makes it a state tuple (steps);
// otherwise an event tuple (impulses). HasTime gates with Time.
type Tuple struct {
	Machine string
	State   string
	Event   string
	HasTime bool
	Time    TimeConstraint
}

// Validate enforces the thesis's rule that event tuples with times must use
// intervals, not instants (§4.3.1).
func (t Tuple) Validate() error {
	if t.Machine == "" || t.State == "" {
		return fmt.Errorf("predicate: tuple needs machine and state: %s", t)
	}
	if t.Event != "" && t.HasTime && t.Time.IsInstant() {
		return fmt.Errorf("predicate: event tuple %s must use a time interval, not an instant", t)
	}
	if t.HasTime && t.Time.Hi < t.Time.Lo {
		return fmt.Errorf("predicate: tuple %s has inverted time interval", t)
	}
	return nil
}

// String implements Expr.
func (t Tuple) String() string {
	s := "(" + t.Machine + ", " + t.State
	if t.Event != "" {
		s += ", " + t.Event
	}
	if t.HasTime {
		if t.Time.IsInstant() {
			s += fmt.Sprintf(", t = %g", t.Time.Lo.Millis())
		} else {
			s += fmt.Sprintf(", %g < t < %g", t.Time.Lo.Millis(), t.Time.Hi.Millis())
		}
	}
	return s + ")"
}

// Eval implements Expr. State tuples yield steps from each entry into State
// (event interval midpoint, as the thesis's Fig 4.2 does) until the next
// state change; event tuples yield impulses at matching state-change rows
// (a row matches when the machine entered State via Event).
func (t Tuple) Eval(g *analysis.Global, horizonLo, horizonHi vclock.Ticks) PVT {
	events := g.MachineEvents(t.Machine)
	if t.Event != "" {
		var impulses []vclock.Ticks
		for _, e := range events {
			if e.Kind == timeline.StateChange && e.State == t.State && e.Event == t.Event {
				impulses = append(impulses, e.Ref.Mid())
			}
		}
		p := NewPVT(nil, impulses)
		if t.HasTime {
			p = p.Clip(t.Time.Lo, t.Time.Hi)
		}
		return p
	}
	var steps []Span
	var openLo vclock.Ticks
	open := false
	for _, e := range events {
		if e.Kind != timeline.StateChange {
			continue
		}
		at := e.Ref.Mid()
		if open && e.State != t.State {
			steps = append(steps, Span{Lo: openLo, Hi: at})
			open = false
		}
		if !open && e.State == t.State {
			openLo, open = at, true
		}
	}
	if open {
		steps = append(steps, Span{Lo: openLo, Hi: vclock.Ticks(math.MaxInt64)})
	}
	p := NewPVT(steps, nil)
	if t.HasTime {
		p = p.Clip(t.Time.Lo, t.Time.Hi)
	}
	return p
}

// Not negates its operand over the evaluation horizon.
type Not struct{ X Expr }

// Eval implements Expr.
func (n Not) Eval(g *analysis.Global, lo, hi vclock.Ticks) PVT {
	return n.X.Eval(g, lo, hi).Not(lo, hi)
}

// String implements Expr.
func (n Not) String() string { return "~" + n.X.String() }

// And is pointwise conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a And) Eval(g *analysis.Global, lo, hi vclock.Ticks) PVT {
	return a.L.Eval(g, lo, hi).And(a.R.Eval(g, lo, hi))
}

// String implements Expr.
func (a And) String() string { return "(" + a.L.String() + " & " + a.R.String() + ")" }

// Or is pointwise disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o Or) Eval(g *analysis.Global, lo, hi vclock.Ticks) PVT {
	return o.L.Eval(g, lo, hi).Or(o.R.Eval(g, lo, hi))
}

// String implements Expr.
func (o Or) String() string { return "(" + o.L.String() + " | " + o.R.String() + ")" }

// Evaluate computes the predicate value timeline of e over g, defaulting
// the horizon to the experiment span (extended to +inf on the right when
// the timeline's last states persist). The horizon only matters for NOT.
func Evaluate(e Expr, g *analysis.Global) PVT {
	span, ok := g.Span()
	if !ok {
		return PVT{}
	}
	return e.Eval(g, span.Lo, span.Hi)
}
