// Package predicate implements Loki's predicate language for querying
// global timelines (thesis §4.3.1) and the predicate value timelines it
// produces.
//
// A predicate is a Boolean combination of tuples. State tuples —
// (machine, state) and (machine, state, time) — contribute *steps*: periods
// during which the machine occupies the state. Event tuples —
// (machine, state, event) and (machine, state, event, time) — contribute
// *impulses*: isolated instants at which the event occurred in the state.
// The resulting predicate value timeline "contains a combination of
// impulses and steps" (§4.3.1), and the observation functions of §4.3.2
// count and measure the two classes separately or together.
//
// Semantics notes (documented here because the thesis leaves them implicit):
// impulses retain their identity even when they occur during a step-true
// period (the thesis's Fig 4.2 third example counts an impulse inside a
// step); negation treats impulse instants as measure-zero, so NOT applies
// to the step component and drops impulses (the thesis never negates event
// tuples).
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vclock"
)

// Span is a half-open step interval [Lo, Hi) of step-truth.
type Span struct {
	Lo, Hi vclock.Ticks
}

// PVT is a predicate value timeline: disjoint sorted step spans plus sorted
// impulse instants. Impulses may fall inside steps.
type PVT struct {
	steps    []Span
	impulses []vclock.Ticks
}

// NewPVT builds a timeline from raw spans and impulses, normalizing both
// (sorting, merging overlapping spans, deduplicating impulses). Empty or
// inverted spans are dropped.
func NewPVT(steps []Span, impulses []vclock.Ticks) PVT {
	return PVT{steps: normalizeSpans(steps), impulses: normalizeImpulses(impulses)}
}

func normalizeSpans(in []Span) []Span {
	var spans []Span
	for _, s := range in {
		if s.Hi > s.Lo {
			spans = append(spans, s)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	var out []Span
	for _, s := range spans {
		if n := len(out); n > 0 && s.Lo <= out[n-1].Hi {
			if s.Hi > out[n-1].Hi {
				out[n-1].Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

func normalizeImpulses(in []vclock.Ticks) []vclock.Ticks {
	imps := append([]vclock.Ticks(nil), in...)
	sort.Slice(imps, func(i, j int) bool { return imps[i] < imps[j] })
	var out []vclock.Ticks
	for i, t := range imps {
		if i > 0 && t == imps[i-1] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Steps returns the step spans (defensive copy).
func (p PVT) Steps() []Span { return append([]Span(nil), p.steps...) }

// Impulses returns the impulse instants (defensive copy).
func (p PVT) Impulses() []vclock.Ticks { return append([]vclock.Ticks(nil), p.impulses...) }

// Empty reports whether the timeline is identically false.
func (p PVT) Empty() bool { return len(p.steps) == 0 && len(p.impulses) == 0 }

// InStep reports whether t lies inside a step span.
func (p PVT) InStep(t vclock.Ticks) bool {
	i := sort.Search(len(p.steps), func(k int) bool { return p.steps[k].Hi > t })
	return i < len(p.steps) && p.steps[i].Lo <= t
}

// AtImpulse reports whether t is exactly an impulse instant.
func (p PVT) AtImpulse(t vclock.Ticks) bool {
	i := sort.Search(len(p.impulses), func(k int) bool { return p.impulses[k] >= t })
	return i < len(p.impulses) && p.impulses[i] == t
}

// Value is the §4.3.2 "outcome": the predicate value at instant t.
func (p PVT) Value(t vclock.Ticks) bool { return p.InStep(t) || p.AtImpulse(t) }

// Or returns the pointwise disjunction.
func (p PVT) Or(q PVT) PVT {
	return NewPVT(append(p.Steps(), q.steps...), append(p.Impulses(), q.impulses...))
}

// And returns the pointwise conjunction. Step∧step intersects spans. An
// impulse survives when the other side is true at its instant (inside the
// other's step, or a coincident impulse).
func (p PVT) And(q PVT) PVT {
	steps := intersectSpans(p.steps, q.steps)
	var impulses []vclock.Ticks
	for _, t := range p.impulses {
		if q.Value(t) {
			impulses = append(impulses, t)
		}
	}
	for _, t := range q.impulses {
		if p.Value(t) {
			impulses = append(impulses, t)
		}
	}
	return NewPVT(steps, impulses)
}

func intersectSpans(a, b []Span) []Span {
	var out []Span
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := maxTicks(a[i].Lo, b[j].Lo)
		hi := minTicks(a[i].Hi, b[j].Hi)
		if hi > lo {
			out = append(out, Span{Lo: lo, Hi: hi})
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Not returns the complement of the step component over the horizon
// [horizonLo, horizonHi); impulses are measure-zero and dropped (see the
// package comment).
func (p PVT) Not(horizonLo, horizonHi vclock.Ticks) PVT {
	var out []Span
	cur := horizonLo
	for _, s := range p.steps {
		if s.Lo > cur {
			out = append(out, Span{Lo: cur, Hi: minTicks(s.Lo, horizonHi)})
		}
		if s.Hi > cur {
			cur = s.Hi
		}
		if cur >= horizonHi {
			break
		}
	}
	if cur < horizonHi {
		out = append(out, Span{Lo: cur, Hi: horizonHi})
	}
	return NewPVT(out, nil)
}

// Clip restricts the timeline to the window [lo, hi] (steps clipped,
// impulses outside dropped).
func (p PVT) Clip(lo, hi vclock.Ticks) PVT {
	var steps []Span
	for _, s := range p.steps {
		l, h := maxTicks(s.Lo, lo), minTicks(s.Hi, hi)
		if h > l {
			steps = append(steps, Span{Lo: l, Hi: h})
		}
	}
	var imps []vclock.Ticks
	for _, t := range p.impulses {
		if t >= lo && t <= hi {
			imps = append(imps, t)
		}
	}
	return NewPVT(steps, imps)
}

// TransitionClass says whether a transition belongs to the step or impulse
// component (the <I, S, B> selector of §4.3.2's observation functions).
type TransitionClass int

// Transition classes.
const (
	Impulse TransitionClass = iota + 1
	Step
)

// Transition is one edge of the predicate value timeline.
type Transition struct {
	At    vclock.Ticks
	Up    bool // false→true if true, true→false otherwise
	Class TransitionClass
}

// Transitions lists all edges in [start, end], ordered by time; at equal
// times, step edges precede impulse edges, and ups precede downs. Every
// impulse contributes an up and a down at its instant.
func (p PVT) Transitions(start, end vclock.Ticks) []Transition {
	var out []Transition
	for _, s := range p.steps {
		if s.Lo >= start && s.Lo <= end {
			out = append(out, Transition{At: s.Lo, Up: true, Class: Step})
		}
		if s.Hi >= start && s.Hi <= end {
			out = append(out, Transition{At: s.Hi, Up: false, Class: Step})
		}
	}
	for _, t := range p.impulses {
		if t >= start && t <= end {
			out = append(out,
				Transition{At: t, Up: true, Class: Impulse},
				Transition{At: t, Up: false, Class: Impulse})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Class != out[j].Class {
			return out[i].Class == Step
		}
		return out[i].Up && !out[j].Up
	})
	return out
}

// StepTrueAfter returns how long the step component remains true from t
// (zero when t is not inside a step).
func (p PVT) StepTrueAfter(t vclock.Ticks) vclock.Ticks {
	for _, s := range p.steps {
		if t >= s.Lo && t < s.Hi {
			return s.Hi - t
		}
	}
	return 0
}

// StepFalseAfter returns how long the step component remains false from t,
// up to horizon (horizon-t when no further step starts).
func (p PVT) StepFalseAfter(t, horizon vclock.Ticks) vclock.Ticks {
	if p.InStep(t) {
		return 0
	}
	for _, s := range p.steps {
		if s.Lo > t {
			return minTicks(s.Lo, horizon) - t
		}
	}
	if horizon > t {
		return horizon - t
	}
	return 0
}

// TotalTrue is the Lebesgue measure of step-truth within [start, end]
// (impulses contribute zero; §4.3.2's total_duration).
func (p PVT) TotalTrue(start, end vclock.Ticks) vclock.Ticks {
	var total vclock.Ticks
	for _, s := range p.steps {
		lo, hi := maxTicks(s.Lo, start), minTicks(s.Hi, end)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// String renders the timeline compactly for debugging, in milliseconds.
func (p PVT) String() string {
	var parts []string
	for _, s := range p.steps {
		parts = append(parts, fmt.Sprintf("[%g,%g)", s.Lo.Millis(), s.Hi.Millis()))
	}
	for _, t := range p.impulses {
		parts = append(parts, fmt.Sprintf("@%g", t.Millis()))
	}
	if len(parts) == 0 {
		return "PVT{}"
	}
	return "PVT{" + strings.Join(parts, " ") + "}"
}

func minTicks(a, b vclock.Ticks) vclock.Ticks {
	if a < b {
		return a
	}
	return b
}

func maxTicks(a, b vclock.Ticks) vclock.Ticks {
	if a > b {
		return a
	}
	return b
}
