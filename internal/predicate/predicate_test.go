package predicate

import (
	"math"
	"testing"

	"repro/internal/vclock"
)

func ms(v float64) vclock.Ticks { return vclock.FromMillis(v) }

func TestNewPVTNormalizes(t *testing.T) {
	p := NewPVT(
		[]Span{{Lo: 30, Hi: 40}, {Lo: 10, Hi: 20}, {Lo: 15, Hi: 25}, {Lo: 50, Hi: 50}, {Lo: 9, Hi: 5}},
		[]vclock.Ticks{7, 3, 7, 1},
	)
	steps := p.Steps()
	if len(steps) != 2 || steps[0] != (Span{Lo: 10, Hi: 25}) || steps[1] != (Span{Lo: 30, Hi: 40}) {
		t.Errorf("steps = %+v", steps)
	}
	imps := p.Impulses()
	if len(imps) != 3 || imps[0] != 1 || imps[1] != 3 || imps[2] != 7 {
		t.Errorf("impulses = %v", imps)
	}
}

func TestPVTValue(t *testing.T) {
	p := NewPVT([]Span{{Lo: 10, Hi: 20}}, []vclock.Ticks{5, 15, 30})
	tests := []struct {
		at   vclock.Ticks
		want bool
	}{
		{5, true},   // impulse
		{6, false},  // between
		{10, true},  // step start (closed)
		{15, true},  // impulse inside step
		{19, true},  // inside step
		{20, false}, // step end (open)
		{30, true},  // impulse
		{31, false},
	}
	for _, tt := range tests {
		if got := p.Value(tt.at); got != tt.want {
			t.Errorf("Value(%d) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestPVTAndOrNot(t *testing.T) {
	a := NewPVT([]Span{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}}, []vclock.Ticks{15})
	b := NewPVT([]Span{{Lo: 5, Hi: 25}}, []vclock.Ticks{15, 40})

	or := a.Or(b)
	if !or.InStep(12) || !or.AtImpulse(40) || !or.InStep(27) {
		t.Errorf("or = %v", or)
	}

	and := a.And(b)
	steps := and.Steps()
	if len(steps) != 2 || steps[0] != (Span{Lo: 5, Hi: 10}) || steps[1] != (Span{Lo: 20, Hi: 25}) {
		t.Errorf("and steps = %+v", steps)
	}
	// Impulse at 15: in a's impulses and b's step; impulse 40 in b only.
	if !and.AtImpulse(15) || and.AtImpulse(40) {
		t.Errorf("and impulses = %v", and.Impulses())
	}

	not := a.Not(0, 50)
	wantSteps := []Span{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 50}}
	gotSteps := not.Steps()
	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("not steps = %+v", gotSteps)
	}
	for i := range wantSteps {
		if gotSteps[i] != wantSteps[i] {
			t.Errorf("not steps[%d] = %+v, want %+v", i, gotSteps[i], wantSteps[i])
		}
	}
	if len(not.Impulses()) != 0 {
		t.Error("negation kept impulses")
	}
}

func TestPVTNotEdges(t *testing.T) {
	empty := PVT{}
	n := empty.Not(10, 20)
	if got := n.Steps(); len(got) != 1 || got[0] != (Span{Lo: 10, Hi: 20}) {
		t.Errorf("not of empty = %+v", got)
	}
	full := NewPVT([]Span{{Lo: 0, Hi: 100}}, nil)
	if !full.Not(10, 20).Empty() {
		t.Error("not of full horizon should be empty")
	}
}

func TestPVTClip(t *testing.T) {
	p := NewPVT([]Span{{Lo: 0, Hi: 100}}, []vclock.Ticks{5, 50, 95})
	c := p.Clip(10, 90)
	if got := c.Steps(); len(got) != 1 || got[0] != (Span{Lo: 10, Hi: 90}) {
		t.Errorf("clip steps = %+v", got)
	}
	if imps := c.Impulses(); len(imps) != 1 || imps[0] != 50 {
		t.Errorf("clip impulses = %v", imps)
	}
}

func TestPVTTransitions(t *testing.T) {
	p := NewPVT([]Span{{Lo: 10, Hi: 20}}, []vclock.Ticks{15, 25})
	trs := p.Transitions(0, 100)
	// step up@10, impulse up+down@15, step down@20, impulse up+down@25
	if len(trs) != 6 {
		t.Fatalf("transitions = %+v", trs)
	}
	if trs[0].At != 10 || !trs[0].Up || trs[0].Class != Step {
		t.Errorf("trs[0] = %+v", trs[0])
	}
	if trs[1].At != 15 || !trs[1].Up || trs[1].Class != Impulse {
		t.Errorf("trs[1] = %+v", trs[1])
	}
	if trs[2].At != 15 || trs[2].Up {
		t.Errorf("trs[2] = %+v", trs[2])
	}
	if trs[3].At != 20 || trs[3].Up || trs[3].Class != Step {
		t.Errorf("trs[3] = %+v", trs[3])
	}
	// Window filtering.
	if got := p.Transitions(12, 18); len(got) != 2 {
		t.Errorf("windowed transitions = %+v", got)
	}
}

func TestPVTDurationsAndTotals(t *testing.T) {
	p := NewPVT([]Span{{Lo: 10, Hi: 20}, {Lo: 40, Hi: 45}}, []vclock.Ticks{30})
	if d := p.StepTrueAfter(12); d != 8 {
		t.Errorf("StepTrueAfter(12) = %d", d)
	}
	if d := p.StepTrueAfter(30); d != 0 {
		t.Errorf("StepTrueAfter(impulse) = %d", d)
	}
	if d := p.StepFalseAfter(20, 100); d != 20 {
		t.Errorf("StepFalseAfter(20) = %d", d)
	}
	if d := p.StepFalseAfter(45, 100); d != 55 {
		t.Errorf("StepFalseAfter(45) = %d", d)
	}
	if d := p.StepFalseAfter(12, 100); d != 0 {
		t.Errorf("StepFalseAfter(in-step) = %d", d)
	}
	if tot := p.TotalTrue(0, 100); tot != 15 {
		t.Errorf("TotalTrue = %d", tot)
	}
	if tot := p.TotalTrue(15, 42); tot != 7 {
		t.Errorf("TotalTrue(15,42) = %d", tot)
	}
}

func TestTupleValidate(t *testing.T) {
	if err := (Tuple{Machine: "m", State: "s"}).Validate(); err != nil {
		t.Errorf("state tuple rejected: %v", err)
	}
	bad := Tuple{Machine: "m", State: "s", Event: "e", HasTime: true, Time: TimeConstraint{Lo: 5, Hi: 5}}
	if err := bad.Validate(); err == nil {
		t.Error("event tuple with instant time accepted (§4.3.1 forbids)")
	}
	if err := (Tuple{State: "s"}).Validate(); err == nil {
		t.Error("machineless tuple accepted")
	}
	inverted := Tuple{Machine: "m", State: "s", HasTime: true, Time: TimeConstraint{Lo: 10, Hi: 5}}
	if err := inverted.Validate(); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestParseTupleForms(t *testing.T) {
	tests := []struct {
		src  string
		want Tuple
	}{
		{"(SM1, State1)", Tuple{Machine: "SM1", State: "State1"}},
		{"(SM1, State1, 10 < t < 20)", Tuple{Machine: "SM1", State: "State1", HasTime: true,
			Time: TimeConstraint{Lo: ms(10), Hi: ms(20)}}},
		{"(SM3, State3, Event3)", Tuple{Machine: "SM3", State: "State3", Event: "Event3"}},
		{"(SM3, State3, Event3, 10 < t < 30)", Tuple{Machine: "SM3", State: "State3", Event: "Event3",
			HasTime: true, Time: TimeConstraint{Lo: ms(10), Hi: ms(30)}}},
		{"(SM1, State1, t = 15)", Tuple{Machine: "SM1", State: "State1", HasTime: true,
			Time: TimeConstraint{Lo: ms(15), Hi: ms(15)}}},
	}
	for _, tt := range tests {
		e, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		got, ok := e.(Tuple)
		if !ok || got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.src, got, tt.want)
		}
	}
}

func TestParseCombinations(t *testing.T) {
	e, err := Parse("((StateMachine1, State1, 10 < t < 20) | (StateMachine2, State2, 30 < t < 40))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Or); !ok {
		t.Fatalf("got %T, want Or", e)
	}
	e2, err := Parse("~(SM1, Up) & (SM2, Up)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(And); !ok {
		t.Fatalf("got %T, want And", e2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(SM1)",
		"(SM1, S, e, 10 < t < 20, extra)",
		"(SM1, S, Event, t = 5)", // instant with event
		"(SM1, S) &",
		"((SM1, S)",
		"(SM1, S, 10 < x < 20)",
		"(SM1, S, 10 < t)",
		"(SM1, S) @ (SM2, S)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	srcs := []string{
		"((StateMachine1, State1, 10 < t < 20) | (StateMachine2, State2, 30 < t < 40))",
		"((StateMachine3, State3, Event3, 10 < t < 30) | (StateMachine3, State4, Event4, 20 < t < 40))",
		"((StateMachine5, State5, Event5) | (StateMachine6, State6, 10 < t < 40))",
		"~(SM1, Down) & ((SM2, Up) | (SM3, Up))",
	}
	g := Fig42Timeline()
	for _, src := range srcs {
		e := MustParse(src)
		again, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", e.String(), err)
			continue
		}
		p1, p2 := Evaluate(e, g), Evaluate(again, g)
		if p1.String() != p2.String() {
			t.Errorf("round trip changed semantics for %q: %v vs %v", src, p1, p2)
		}
	}
}

// TestFig42PredicateTimelines checks the three §4.3.1 example predicates
// against the reconstructed global timeline. Expected values are computed
// from the printed event table (see EXPERIMENTS.md for the reconciliation
// with the thesis's printed observation values).
func TestFig42PredicateTimelines(t *testing.T) {
	g := Fig42Timeline()

	// Predicate 1: steps only.
	p1 := Evaluate(MustParse("((StateMachine1, State1, 10 < t < 20) | (StateMachine2, State2, 30 < t < 40))"), g)
	wantSteps := []Span{{Lo: ms(18.9), Hi: ms(20)}, {Lo: ms(32.3), Hi: ms(35.6)}, {Lo: ms(38.9), Hi: ms(40)}}
	gotSteps := p1.Steps()
	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("p1 steps = %v", p1)
	}
	for i := range wantSteps {
		if gotSteps[i] != wantSteps[i] {
			t.Errorf("p1 steps[%d] = %+v, want %+v", i, gotSteps[i], wantSteps[i])
		}
	}
	if len(p1.Impulses()) != 0 {
		t.Errorf("p1 impulses = %v, want none", p1.Impulses())
	}

	// Predicate 2: impulses only.
	p2 := Evaluate(MustParse("((StateMachine3, State3, Event3, 10 < t < 30) | (StateMachine3, State4, Event4, 20 < t < 40))"), g)
	if len(p2.Steps()) != 0 {
		t.Errorf("p2 steps = %v, want none", p2.Steps())
	}
	imps := p2.Impulses()
	if len(imps) != 2 || imps[0] != ms(22.3) || imps[1] != ms(26.3) {
		t.Errorf("p2 impulses = %v", imps)
	}

	// Predicate 3: mixed.
	p3 := Evaluate(MustParse("((StateMachine5, State5, Event5) | (StateMachine6, State6, 10 < t < 40))"), g)
	gotSteps = p3.Steps()
	wantSteps = []Span{{Lo: ms(20), Hi: ms(32.3)}, {Lo: ms(37.9), Hi: ms(40)}}
	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("p3 steps = %v", p3)
	}
	for i := range wantSteps {
		if gotSteps[i] != wantSteps[i] {
			t.Errorf("p3 steps[%d] = %+v, want %+v", i, gotSteps[i], wantSteps[i])
		}
	}
	imps = p3.Impulses()
	if len(imps) != 4 || imps[0] != ms(11.2) || imps[3] != ms(40.6) {
		t.Errorf("p3 impulses = %v", imps)
	}
}

func TestStateTupleLastStateExtends(t *testing.T) {
	g := Fig42Timeline()
	// SM6 last enters State6 at 37.9 with no later change: untimed tuple
	// extends to +inf.
	p := Evaluate(MustParse("(StateMachine6, State6)"), g)
	steps := p.Steps()
	if len(steps) != 2 {
		t.Fatalf("steps = %v", p)
	}
	if steps[1].Lo != ms(37.9) || steps[1].Hi != math.MaxInt64 {
		t.Errorf("last span = %+v", steps[1])
	}
}

func TestEvalUnknownMachineEmpty(t *testing.T) {
	g := Fig42Timeline()
	if p := Evaluate(MustParse("(NoSuchMachine, State1)"), g); !p.Empty() {
		t.Errorf("unknown machine PVT = %v", p)
	}
}

func TestPVTStringer(t *testing.T) {
	p := NewPVT([]Span{{Lo: ms(1), Hi: ms(2)}}, []vclock.Ticks{ms(3)})
	if s := p.String(); s != "PVT{[1,2) @3}" {
		t.Errorf("String = %q", s)
	}
	if (PVT{}).String() != "PVT{}" {
		t.Error("empty string form")
	}
}
