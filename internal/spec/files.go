package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeEntry is one line of the node file (§3.5.1):
//
//	<SM NickName> [<HostName>]
//
// If Host is non-empty the central daemon starts the machine on that host at
// the beginning of every experiment; otherwise the machine is known (it may
// enter dynamically) but not auto-started.
type NodeEntry struct {
	Nickname string
	Host     string
}

// AutoStart reports whether this machine starts at experiment begin.
func (e NodeEntry) AutoStart() bool { return e.Host != "" }

// ParseNodeFile parses a node file. Every state machine that could possibly
// run during an experiment must appear (§3.8).
func ParseNodeFile(doc string) ([]NodeEntry, error) {
	var entries []NodeEntry
	seen := make(map[string]bool)
	for i, raw := range strings.Split(doc, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) > 2 {
			return nil, fmt.Errorf("spec: node file line %d: want '<nick> [<host>]', got %q", i+1, line)
		}
		e := NodeEntry{Nickname: fields[0]}
		if len(fields) == 2 {
			e.Host = fields[1]
		}
		if seen[e.Nickname] {
			return nil, fmt.Errorf("spec: node file line %d: duplicate nickname %q", i+1, e.Nickname)
		}
		seen[e.Nickname] = true
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("spec: node file is empty")
	}
	return entries, nil
}

// FormatNodeFile renders node entries back to the file format.
func FormatNodeFile(entries []NodeEntry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e.Nickname)
		if e.Host != "" {
			b.WriteString(" " + e.Host)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DaemonAddr is one line of the daemon startup file (§3.5.2):
//
//	<HostName> <PortNumber>
type DaemonAddr struct {
	Host string
	Port int
}

// ParseDaemonStartup parses a daemon startup file.
func ParseDaemonStartup(doc string) ([]DaemonAddr, error) {
	var out []DaemonAddr
	seen := make(map[string]bool)
	for i, raw := range strings.Split(doc, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("spec: daemon startup line %d: want '<host> <port>', got %q", i+1, line)
		}
		port, err := strconv.Atoi(fields[1])
		if err != nil || port <= 0 || port > 65535 {
			return nil, fmt.Errorf("spec: daemon startup line %d: bad port %q", i+1, fields[1])
		}
		if seen[fields[0]] {
			return nil, fmt.Errorf("spec: daemon startup line %d: duplicate host %q", i+1, fields[0])
		}
		seen[fields[0]] = true
		out = append(out, DaemonAddr{Host: fields[0], Port: port})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("spec: daemon startup file is empty")
	}
	return out, nil
}

// FormatDaemonStartup renders daemon addresses back to the file format.
func FormatDaemonStartup(addrs []DaemonAddr) string {
	var b strings.Builder
	for _, a := range addrs {
		fmt.Fprintf(&b, "%s %d\n", a.Host, a.Port)
	}
	return b.String()
}

// DaemonContact is one line of the daemon contact file (§3.5.2):
//
//	<HostName> <SharedMemoryID> <SemaphoreID>
//
// In this reproduction the IDs address in-process mailboxes rather than
// SysV IPC objects, but the file format is preserved.
type DaemonContact struct {
	Host        string
	SharedMemID int
	SemaphoreID int
}

// ParseDaemonContact parses a daemon contact file.
func ParseDaemonContact(doc string) ([]DaemonContact, error) {
	var out []DaemonContact
	for i, raw := range strings.Split(doc, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("spec: daemon contact line %d: want '<host> <shmid> <semid>', got %q", i+1, line)
		}
		shm, err1 := strconv.Atoi(fields[1])
		sem, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("spec: daemon contact line %d: bad ids in %q", i+1, line)
		}
		out = append(out, DaemonContact{Host: fields[0], SharedMemID: shm, SemaphoreID: sem})
	}
	return out, nil
}

// FormatDaemonContact renders contacts back to the file format.
func FormatDaemonContact(cs []DaemonContact) string {
	var b strings.Builder
	for _, c := range cs {
		fmt.Fprintf(&b, "%s %d %d\n", c.Host, c.SharedMemID, c.SemaphoreID)
	}
	return b.String()
}

// ParseMachinesFile parses the machines file (§5.6): one host name per line.
func ParseMachinesFile(doc string) ([]string, error) {
	var hosts []string
	seen := make(map[string]bool)
	for i, raw := range strings.Split(doc, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 1 {
			return nil, fmt.Errorf("spec: machines file line %d: one host per line, got %q", i+1, line)
		}
		if seen[line] {
			return nil, fmt.Errorf("spec: machines file line %d: duplicate host %q", i+1, line)
		}
		seen[line] = true
		hosts = append(hosts, line)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("spec: machines file is empty")
	}
	return hosts, nil
}

// Study is a parsed study file (§5.6). One exists per state machine per
// study; it binds the machine's nickname to its specification files and the
// application to run.
type Study struct {
	Nickname      string
	NodeFile      string
	StateMachFile string
	FaultSpecFile string
	Executable    string
	Args          []string
}

// ParseStudyFile parses the §5.6 study file format, which is positional,
// one field per line:
//
//	<SMNickName>
//	<NodeFile>
//	<StateMachineSpecificationFile>
//	<FaultSpecificationFile>
//	<InstrumentedApplicationExecutable Path>
//	<ApplicationArguments>
//
// The arguments line may be empty; everything after the fifth line is
// treated as whitespace-separated arguments.
func ParseStudyFile(doc string) (*Study, error) {
	var lines []string
	for _, raw := range strings.Split(doc, "\n") {
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	// Trim trailing blank lines but keep interior ones (args may be blank).
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 5 {
		return nil, fmt.Errorf("spec: study file has %d lines, want at least 5", len(lines))
	}
	for i, what := range []string{"nickname", "node file", "state machine spec", "fault spec", "executable"} {
		if lines[i] == "" {
			return nil, fmt.Errorf("spec: study file line %d (%s) is blank", i+1, what)
		}
	}
	s := &Study{
		Nickname:      lines[0],
		NodeFile:      lines[1],
		StateMachFile: lines[2],
		FaultSpecFile: lines[3],
		Executable:    lines[4],
	}
	if len(lines) > 5 {
		s.Args = strings.Fields(strings.Join(lines[5:], " "))
	}
	return s, nil
}

// Format renders the study back to its file format.
func (s *Study) Format() string {
	return strings.Join([]string{
		s.Nickname, s.NodeFile, s.StateMachFile, s.FaultSpecFile,
		s.Executable, strings.Join(s.Args, " "),
	}, "\n") + "\n"
}
