package spec

import (
	"strings"
	"testing"
)

// blackSpec is the verbatim state machine specification for machine "black"
// from thesis §5.3.
const blackSpec = `
global_state_list
  BEGIN
  INIT
  RESTART_SM
  ELECT
  FOLLOW
  LEAD
  CRASH
  EXIT
end_global_state_list
event_list
  START
  INIT_DONE
  RESTART
  RESTART_DONE
  LEADER
  FOLLOWER
  LEADER_CRASH
  CRASH
  ERROR
end_event_list

state INIT notify green yellow
  INIT_DONE ELECT
  ERROR EXIT

state RESTART_SM notify green yellow
  RESTART_DONE FOLLOW
  ERROR EXIT

state ELECT notify
  FOLLOWER FOLLOW
  LEADER LEAD
  CRASH CRASH
  ERROR EXIT

state LEAD notify
  CRASH CRASH
  ERROR EXIT

state FOLLOW notify
  LEADER_CRASH ELECT
  CRASH CRASH
  ERROR EXIT

state CRASH notify green yellow
state EXIT notify
`

func TestParseBlackSpec(t *testing.T) {
	m, err := ParseStateMachine(blackSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GlobalStates) != 8 {
		t.Errorf("global states = %d, want 8", len(m.GlobalStates))
	}
	if len(m.Events) != 9 {
		t.Errorf("events = %d, want 9", len(m.Events))
	}
	if len(m.StateOrder) != 7 {
		t.Errorf("defined states = %d, want 7", len(m.StateOrder))
	}
	init := m.States["INIT"]
	if init == nil || len(init.Notify) != 2 || init.Notify[0] != "green" || init.Notify[1] != "yellow" {
		t.Errorf("INIT notify = %+v", init)
	}
	if next, ok := m.Next("ELECT", "LEADER"); !ok || next != "LEAD" {
		t.Errorf("Next(ELECT, LEADER) = %q, %v", next, ok)
	}
	if next, ok := m.Next("FOLLOW", "LEADER_CRASH"); !ok || next != "ELECT" {
		t.Errorf("Next(FOLLOW, LEADER_CRASH) = %q, %v", next, ok)
	}
	if _, ok := m.Next("LEAD", "LEADER_CRASH"); ok {
		t.Error("LEAD should have no transition on LEADER_CRASH")
	}
	if nl := m.NotifyList("CRASH"); len(nl) != 2 {
		t.Errorf("CRASH notify = %v", nl)
	}
	if nl := m.NotifyList("ELECT"); len(nl) != 0 {
		t.Errorf("ELECT notify = %v, want empty", nl)
	}
}

func TestParseCommaNotify(t *testing.T) {
	doc := `
global_state_list
  A
  B
end_global_state_list
event_list
  go
end_event_list
state A notify sm1, sm2, sm3
  go B
`
	m, err := ParseStateMachine(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := m.States["A"].Notify
	if len(got) != 3 || got[0] != "sm1" || got[2] != "sm3" {
		t.Errorf("notify = %v", got)
	}
}

func TestDefaultTransition(t *testing.T) {
	doc := `
global_state_list
  A
  B
  SINK
end_global_state_list
event_list
  go
end_event_list
state A
  go B
  default SINK
`
	m, err := ParseStateMachine(doc)
	if err != nil {
		t.Fatal(err)
	}
	if next, ok := m.Next("A", "go"); !ok || next != "B" {
		t.Errorf("explicit transition broken: %q %v", next, ok)
	}
	if next, ok := m.Next("A", "whatever"); !ok || next != "SINK" {
		t.Errorf("default transition = %q %v, want SINK", next, ok)
	}
}

func TestNextOnUndefinedState(t *testing.T) {
	m, err := ParseStateMachine(blackSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Next("NOSUCH", "CRASH"); ok {
		t.Error("transition out of undefined state should fail")
	}
	// BEGIN is declared but has no definition block: no transitions.
	if _, ok := m.Next("BEGIN", "START"); ok {
		t.Error("BEGIN has no transitions in this spec")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m, err := ParseStateMachine(blackSpec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseStateMachine(m.Format())
	if err != nil {
		t.Fatalf("reparse of Format output: %v\n%s", err, m.Format())
	}
	if len(again.GlobalStates) != len(m.GlobalStates) || len(again.Events) != len(m.Events) {
		t.Fatal("round trip lost list entries")
	}
	for _, name := range m.StateOrder {
		a, b := m.States[name], again.States[name]
		if b == nil {
			t.Fatalf("round trip lost state %q", name)
		}
		if len(a.Notify) != len(b.Notify) || len(a.Transitions) != len(b.Transitions) {
			t.Fatalf("state %q changed: %+v vs %+v", name, a, b)
		}
		for ev, next := range a.Transitions {
			if b.Transitions[ev] != next {
				t.Fatalf("state %q transition %q changed", name, ev)
			}
		}
	}
}

func TestParseStateMachineErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{"unterminated states", "global_state_list\nA\n", "unterminated"},
		{"content before lists", "state A\n", "before global_state_list"},
		{"two tokens in state list", "global_state_list\nA B\nend_global_state_list\nevent_list\ne\nend_event_list\n", "one state per line"},
		{"transition outside state", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\ne A\n", "outside a state block"},
		{"undeclared target", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\nstate A\ne B\n", "undeclared state"},
		{"undeclared event", "global_state_list\nA\nB\nend_global_state_list\nevent_list\ne\nend_event_list\nstate A\nzap B\n", "undeclared event"},
		{"duplicate state def", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\nstate A\nstate A\n", "duplicate state definition"},
		{"duplicate transition", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\nstate A\ne A\ne A\n", "duplicate transition"},
		{"duplicate global state", "global_state_list\nA\nA\nend_global_state_list\nevent_list\ne\nend_event_list\n", "duplicate global state"},
		{"state not declared", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\nstate Z\n", "not in global_state_list"},
		{"bad notify keyword", "global_state_list\nA\nend_global_state_list\nevent_list\ne\nend_event_list\nstate A inform x\n", "expected 'notify'"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseStateMachine(tt.doc)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestReservedEventTransitionsAllowed(t *testing.T) {
	// CRASH and RESTART events may be used without declaring them.
	doc := `
global_state_list
  A
  CRASH
end_global_state_list
event_list
  e
end_event_list
state A
  CRASH CRASH
`
	if _, err := ParseStateMachine(doc); err != nil {
		t.Fatalf("reserved event transition rejected: %v", err)
	}
}

func TestParseNodeFile(t *testing.T) {
	entries, err := ParseNodeFile("# nodes\nblack host1\ngreen host2\nyellow\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	if !entries[0].AutoStart() || entries[0].Host != "host1" {
		t.Errorf("entries[0] = %+v", entries[0])
	}
	if entries[2].AutoStart() {
		t.Error("yellow should not auto-start")
	}
	round, err := ParseNodeFile(FormatNodeFile(entries))
	if err != nil || len(round) != 3 {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestParseNodeFileErrors(t *testing.T) {
	if _, err := ParseNodeFile(""); err == nil {
		t.Error("empty node file should fail")
	}
	if _, err := ParseNodeFile("a b c\n"); err == nil {
		t.Error("three-field line should fail")
	}
	if _, err := ParseNodeFile("a h1\na h2\n"); err == nil {
		t.Error("duplicate nickname should fail")
	}
}

func TestParseDaemonStartup(t *testing.T) {
	addrs, err := ParseDaemonStartup("host1 9000\nhost2 9001\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[1].Port != 9001 {
		t.Fatalf("addrs = %+v", addrs)
	}
	if _, err := ParseDaemonStartup("host1 notaport\n"); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := ParseDaemonStartup("host1 0\n"); err == nil {
		t.Error("port 0 accepted")
	}
	if _, err := ParseDaemonStartup("host1 9000\nhost1 9001\n"); err == nil {
		t.Error("duplicate host accepted")
	}
	round, err := ParseDaemonStartup(FormatDaemonStartup(addrs))
	if err != nil || len(round) != 2 {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestParseDaemonContact(t *testing.T) {
	cs, err := ParseDaemonContact("host1 101 201\nhost2 102 202\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].SharedMemID != 101 || cs[1].SemaphoreID != 202 {
		t.Fatalf("contacts = %+v", cs)
	}
	if _, err := ParseDaemonContact("host1 x y\n"); err == nil {
		t.Error("bad ids accepted")
	}
	round, err := ParseDaemonContact(FormatDaemonContact(cs))
	if err != nil || len(round) != 2 {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestParseMachinesFile(t *testing.T) {
	hosts, err := ParseMachinesFile("host1\nhost2\nhost3\n")
	if err != nil || len(hosts) != 3 {
		t.Fatalf("hosts = %v, err = %v", hosts, err)
	}
	if _, err := ParseMachinesFile("\n\n"); err == nil {
		t.Error("empty machines file accepted")
	}
	if _, err := ParseMachinesFile("h1\nh1\n"); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := ParseMachinesFile("h1 h2\n"); err == nil {
		t.Error("two hosts on one line accepted")
	}
}

func TestParseStudyFile(t *testing.T) {
	doc := `black
nodes.txt
black.sm
black.faults
./election
-id black -n 3
`
	s, err := ParseStudyFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nickname != "black" || s.Executable != "./election" {
		t.Errorf("study = %+v", s)
	}
	if len(s.Args) != 4 || s.Args[0] != "-id" || s.Args[3] != "3" {
		t.Errorf("args = %v", s.Args)
	}
	round, err := ParseStudyFile(s.Format())
	if err != nil || round.Nickname != s.Nickname || len(round.Args) != len(s.Args) {
		t.Errorf("round trip failed: %+v, %v", round, err)
	}
}

func TestParseStudyFileNoArgs(t *testing.T) {
	s, err := ParseStudyFile("black\nnodes\nsm\nfaults\n./bin\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Args) != 0 {
		t.Errorf("args = %v, want none", s.Args)
	}
}

func TestParseStudyFileErrors(t *testing.T) {
	if _, err := ParseStudyFile("a\nb\nc\n"); err == nil {
		t.Error("short study file accepted")
	}
	if _, err := ParseStudyFile("a\n\nc\nd\ne\n"); err == nil {
		t.Error("blank required line accepted")
	}
}

func TestMachinesNotified(t *testing.T) {
	m, err := ParseStateMachine(blackSpec)
	if err != nil {
		t.Fatal(err)
	}
	got := m.MachinesNotified()
	if len(got) != 2 || got[0] != "green" || got[1] != "yellow" {
		t.Errorf("MachinesNotified = %v", got)
	}
}
