// Package spec implements the textual specification file formats the Loki
// thesis defines: state machine specifications (§3.5.3), fault
// specifications (§3.5.5, via internal/faultexpr), node files (§3.5.1),
// daemon startup and contact files (§3.5.2), study files and machines files
// (§5.6).
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Reserved state names (§3.5.7). BEGIN is every state machine's implicit
// initial state; CRASH/EXIT/RESTART are entered by the runtime itself.
const (
	StateBegin   = "BEGIN"
	StateExit    = "EXIT"
	StateCrash   = "CRASH"
	StateRestart = "RESTART"
)

// Reserved event names (§3.5.7). EventDefault matches any event that has no
// explicit transition from the current state.
const (
	EventCrash   = "CRASH"
	EventRestart = "RESTART"
	EventDefault = "default"
)

// StateDef is one state's definition: who to notify on entry, and the
// transition function out of the state.
type StateDef struct {
	Name string
	// Notify lists the state machines to be told when this machine enters
	// the state (the "notify" clause). Order is preserved from the spec.
	Notify []string
	// Transitions maps a local event to the next state.
	Transitions map[string]string
	// EventOrder preserves the order transitions were declared, for
	// faithful re-rendering.
	EventOrder []string
}

// StateMachine is a parsed state machine specification (§3.5.3). The
// machine's own nickname is not part of the file format — it comes from the
// study file — so it is carried separately.
type StateMachine struct {
	// GlobalStates is the global_state_list: the states of *all* machines
	// in the system, in declaration order.
	GlobalStates []string
	// Events is the event_list: this machine's local events.
	Events []string
	// States holds the per-state definitions.
	States map[string]*StateDef
	// StateOrder preserves state definition order.
	StateOrder []string
}

// HasGlobalState reports whether name appears in the global state list.
func (m *StateMachine) HasGlobalState(name string) bool {
	for _, s := range m.GlobalStates {
		if s == name {
			return true
		}
	}
	return false
}

// HasEvent reports whether name appears in the event list.
func (m *StateMachine) HasEvent(name string) bool {
	for _, e := range m.Events {
		if e == name {
			return true
		}
	}
	return false
}

// Next computes the transition out of state on event. It returns the next
// state, falling back to the state's "default" transition if the event has
// no explicit entry; ok is false if neither exists (the event is ignored in
// this state, which the runtime logs as a warning).
func (m *StateMachine) Next(state, event string) (next string, ok bool) {
	def, exists := m.States[state]
	if !exists {
		return "", false
	}
	if next, ok = def.Transitions[event]; ok {
		return next, true
	}
	next, ok = def.Transitions[EventDefault]
	return next, ok
}

// NotifyList returns the machines to notify when entering state. A state
// with no definition (e.g. EXIT when left implicit) notifies nobody.
func (m *StateMachine) NotifyList(state string) []string {
	if def, ok := m.States[state]; ok {
		return def.Notify
	}
	return nil
}

// Validate checks internal consistency: every transition target must be a
// declared global state, every transition event a declared event (or
// "default"), and every defined state a declared global state.
func (m *StateMachine) Validate() error {
	if len(m.GlobalStates) == 0 {
		return fmt.Errorf("spec: empty global_state_list")
	}
	seen := make(map[string]bool, len(m.GlobalStates))
	for _, s := range m.GlobalStates {
		if seen[s] {
			return fmt.Errorf("spec: duplicate global state %q", s)
		}
		seen[s] = true
	}
	seenEv := make(map[string]bool, len(m.Events))
	for _, e := range m.Events {
		if seenEv[e] {
			return fmt.Errorf("spec: duplicate event %q", e)
		}
		seenEv[e] = true
	}
	for _, name := range m.StateOrder {
		def := m.States[name]
		if !m.HasGlobalState(name) {
			return fmt.Errorf("spec: state %q defined but not in global_state_list", name)
		}
		for _, ev := range def.EventOrder {
			next := def.Transitions[ev]
			if ev != EventDefault && !m.HasEvent(ev) && !isReservedEvent(ev) {
				return fmt.Errorf("spec: state %q: transition on undeclared event %q", name, ev)
			}
			if !m.HasGlobalState(next) {
				return fmt.Errorf("spec: state %q: transition on %q to undeclared state %q", name, ev, next)
			}
		}
	}
	return nil
}

func isReservedEvent(ev string) bool {
	return ev == EventCrash || ev == EventRestart || ev == EventDefault
}

// MachinesNotified returns the sorted union of all machines named in any
// notify clause.
func (m *StateMachine) MachinesNotified() []string {
	set := make(map[string]bool)
	for _, def := range m.States {
		for _, n := range def.Notify {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseStateMachine parses the §3.5.3 format:
//
//	global_state_list
//	<states, one per line>
//	end_global_state_list
//	event_list
//	<events, one per line>
//	end_event_list
//
//	state <name> [notify <nick1> ... <nickN>]
//	<event> <next-state>
//	...
//
// Blank lines and '#' comments are permitted anywhere. Notify lists accept
// both space- and comma-separated nicknames (the thesis uses both styles).
func ParseStateMachine(doc string) (*StateMachine, error) {
	m := &StateMachine{States: make(map[string]*StateDef)}
	var cur *StateDef
	section := "" // "", "states", "events", "body"

	for i, raw := range strings.Split(doc, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "global_state_list":
			if section != "" {
				return nil, fmt.Errorf("spec: line %d: unexpected global_state_list", lineNo)
			}
			section = "states"
			continue
		case "end_global_state_list":
			if section != "states" {
				return nil, fmt.Errorf("spec: line %d: end_global_state_list outside list", lineNo)
			}
			section = ""
			continue
		case "event_list":
			if section != "" {
				return nil, fmt.Errorf("spec: line %d: unexpected event_list", lineNo)
			}
			section = "events"
			continue
		case "end_event_list":
			if section != "events" {
				return nil, fmt.Errorf("spec: line %d: end_event_list outside list", lineNo)
			}
			section = "body"
			continue
		}

		switch section {
		case "states":
			if len(fields) != 1 {
				return nil, fmt.Errorf("spec: line %d: one state per line, got %q", lineNo, line)
			}
			m.GlobalStates = append(m.GlobalStates, fields[0])
		case "events":
			if len(fields) != 1 {
				return nil, fmt.Errorf("spec: line %d: one event per line, got %q", lineNo, line)
			}
			m.Events = append(m.Events, fields[0])
		case "body":
			if fields[0] == "state" {
				if len(fields) < 2 {
					return nil, fmt.Errorf("spec: line %d: state without a name", lineNo)
				}
				name := fields[1]
				if _, dup := m.States[name]; dup {
					return nil, fmt.Errorf("spec: line %d: duplicate state definition %q", lineNo, name)
				}
				def := &StateDef{Name: name, Transitions: make(map[string]string)}
				if len(fields) > 2 {
					if fields[2] != "notify" {
						return nil, fmt.Errorf("spec: line %d: expected 'notify', got %q", lineNo, fields[2])
					}
					for _, n := range fields[3:] {
						n = strings.TrimSuffix(strings.TrimSpace(n), ",")
						if n != "" {
							def.Notify = append(def.Notify, n)
						}
					}
				}
				m.States[name] = def
				m.StateOrder = append(m.StateOrder, name)
				cur = def
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("spec: line %d: transition %q outside a state block", lineNo, line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("spec: line %d: want '<event> <next-state>', got %q", lineNo, line)
			}
			ev, next := fields[0], fields[1]
			if _, dup := cur.Transitions[ev]; dup {
				return nil, fmt.Errorf("spec: line %d: duplicate transition on %q in state %q", lineNo, ev, cur.Name)
			}
			cur.Transitions[ev] = next
			cur.EventOrder = append(cur.EventOrder, ev)
		default:
			return nil, fmt.Errorf("spec: line %d: unexpected content %q before global_state_list", lineNo, line)
		}
	}
	if section == "states" || section == "events" {
		return nil, fmt.Errorf("spec: unterminated %s list", section)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Format renders the machine back into the §3.5.3 file format.
func (m *StateMachine) Format() string {
	var b strings.Builder
	b.WriteString("global_state_list\n")
	for _, s := range m.GlobalStates {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	b.WriteString("end_global_state_list\n")
	b.WriteString("event_list\n")
	for _, e := range m.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	b.WriteString("end_event_list\n")
	for _, name := range m.StateOrder {
		def := m.States[name]
		b.WriteString("\nstate " + name)
		if len(def.Notify) > 0 {
			b.WriteString(" notify " + strings.Join(def.Notify, " "))
		}
		b.WriteString("\n")
		for _, ev := range def.EventOrder {
			fmt.Fprintf(&b, "  %s %s\n", ev, def.Transitions[ev])
		}
	}
	return b.String()
}
