package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultexpr"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// TestRestartRearmsOnceTriggers documents the restart semantics: a
// restarted node gets a fresh fault parser (as in the thesis, where the
// fault parser is part of the per-node runtime), so a Once fault can fire
// again after the node restarts.
func TestRestartRearmsOnceTriggers(t *testing.T) {
	rt := newTestRuntime(t)
	var fires atomic.Int32
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "f", Expr: faultexpr.MustParse("(n:B)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				h.NotifyEvent("go_b")
				if !h.Restarted() {
					h.Crash()
				}
			},
			inject: func(h *Handle, fault string) { fires.Add(1) },
		},
	})
	n1, _ := rt.StartNode("n", "h1")
	waitFor(t, "crash", func() bool { return n1.Outcome() == "crashed" })
	if fires.Load() != 1 {
		t.Fatalf("fires = %d before restart", fires.Load())
	}
	if _, err := rt.StartNode("n", "h2"); err != nil {
		t.Fatal(err)
	}
	rt.Wait(5 * time.Second)
	if fires.Load() != 2 {
		t.Errorf("fires = %d after restart, want 2 (fresh fault parser)", fires.Load())
	}
}

// TestWatchdogSparesHeartbeatingNode: a busy but heartbeating node must not
// be declared crashed.
func TestWatchdogSparesHeartbeatingNode(t *testing.T) {
	rt := New(Config{
		WatchdogInterval: 5 * time.Millisecond,
		WatchdogTimeout:  20 * time.Millisecond,
		Logf:             t.Logf,
	})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.Register(NodeDef{
		Nickname: "busy", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			deadline := time.Now().Add(80 * time.Millisecond)
			for time.Now().Before(deadline) {
				h.Heartbeat()
				time.Sleep(2 * time.Millisecond)
			}
		}},
	})
	n, _ := rt.StartNode("busy", "h1")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if n.Outcome() != "exited" {
		t.Errorf("outcome = %s; watchdog killed a live node", n.Outcome())
	}
}

// TestExitNotifyListFallback: without an EXIT state notify clause, the exit
// notification goes to every machine the spec ever notifies.
func TestExitNotifyListFallback(t *testing.T) {
	rt := newTestRuntime(t)
	var sawExit atomic.Int32
	rt.Register(NodeDef{
		Nickname: "watcher", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "onExit", Expr: faultexpr.MustParse("(leaver:EXIT)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				for sawExit.Load() == 0 {
					if !h.Sleep(time.Millisecond) {
						return
					}
				}
			},
			inject: func(h *Handle, fault string) { sawExit.Add(1) },
		},
	})
	rt.Register(NodeDef{
		Nickname: "leaver", Spec: simpleSpec("watcher"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(3 * time.Millisecond)
		}},
	})
	rt.StartNode("watcher", "h1")
	rt.StartNode("leaver", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if sawExit.Load() != 1 {
		t.Error("watcher never saw leaver's EXIT notification")
	}
}

// TestInjectionRecordPrecedesAction: the recorder logs the injection at
// dispatch, even when the action itself is a no-op, so analysis always has
// the record.
func TestInjectionRecordPrecedesAction(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "f", Expr: faultexpr.MustParse("(n:A)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main:   func(h *Handle) { h.NotifyEvent("A") },
			inject: func(h *Handle, fault string) {},
		},
	})
	rt.StartNode("n", "h1")
	rt.Wait(5 * time.Second)
	tl := rt.Store().Get("n")
	inj := tl.Injections()
	if len(inj) != 1 || inj[0].Fault != "f" {
		t.Fatalf("injections = %+v", inj)
	}
	// The injection time must not precede the state change that fired it.
	var stateAt vclock.Ticks
	for _, e := range tl.Entries {
		if e.Kind == timeline.StateChange && e.NewState == "A" {
			stateAt = e.Time
		}
	}
	if inj[0].Time < stateAt {
		t.Errorf("injection at %d before trigger state at %d", inj[0].Time, stateAt)
	}
}

// TestSnapshotTimelineLiveAndDead covers both snapshot paths.
func TestSnapshotTimelineLiveAndDead(t *testing.T) {
	rt := newTestRuntime(t)
	release := make(chan struct{})
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			select {
			case <-release:
			case <-h.Done():
			}
		}},
	})
	rt.StartNode("n", "h1")
	waitFor(t, "live snapshot shows state A", func() bool {
		tl := rt.SnapshotTimeline("n")
		if tl == nil {
			return false
		}
		s, ok := tl.LastState()
		return ok && s == "A"
	})
	close(release)
	rt.Wait(5 * time.Second)
	tl := rt.SnapshotTimeline("n")
	if s, _ := tl.LastState(); s != "EXIT" {
		t.Errorf("dead snapshot last state = %q", s)
	}
	if rt.SnapshotTimeline("ghost") != nil {
		t.Error("unknown nickname returned a timeline")
	}
	names := rt.TimelineNames()
	if len(names) != 1 || names[0] != "n" {
		t.Errorf("TimelineNames = %v", names)
	}
}

// TestResetExperimentPanicsWithLiveNodes guards the central daemon
// invariant.
func TestResetExperimentPanicsWithLiveNodes(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(100 * time.Millisecond)
		}},
	})
	rt.StartNode("n", "h1")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
		rt.KillAll()
		rt.Wait(time.Second)
	}()
	rt.ResetExperiment()
}

// TestLocalDelayRouting: same-host notifications honor LocalDelay rather
// than RemoteDelay.
func TestLocalDelayRouting(t *testing.T) {
	rt := New(Config{
		LocalDelay:  time.Millisecond,
		RemoteDelay: 500 * time.Millisecond, // would blow the deadline if used
		Logf:        t.Logf,
	})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	var saw atomic.Int32
	rt.Register(NodeDef{
		Nickname: "rx", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "f", Expr: faultexpr.MustParse("(tx:A)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				for saw.Load() == 0 {
					if !h.Sleep(time.Millisecond) {
						return
					}
				}
			},
			inject: func(h *Handle, fault string) { saw.Add(1) },
		},
	})
	rt.Register(NodeDef{
		Nickname: "tx", Spec: simpleSpec("rx"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(30 * time.Millisecond)
		}},
	})
	rt.StartNode("rx", "h1")
	rt.StartNode("tx", "h1")
	if !rt.Wait(3 * time.Second) {
		t.Fatal("timeout")
	}
	if saw.Load() != 1 {
		t.Error("same-host notification not delivered within LocalDelay")
	}
}

// TestHostCrashAndReboot exercises the §3.6.4 feature the thesis left
// unimplemented: a host failure crashes every node on it; after reboot,
// nodes restart there.
func TestHostCrashAndReboot(t *testing.T) {
	rt := newTestRuntime(t)
	for _, nick := range []string{"a", "b"} {
		rt.Register(NodeDef{
			Nickname: nick, Spec: simpleSpec(),
			App: scriptApp{main: func(h *Handle) {
				h.NotifyEvent("A")
				<-h.Done()
			}},
		})
	}
	na, _ := rt.StartNode("a", "h1")
	nb, _ := rt.StartNode("b", "h1")
	if err := rt.CrashHost("h1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both nodes crashed", func() bool {
		return na.Outcome() == "crashed" && nb.Outcome() == "crashed"
	})
	waitFor(t, "both nodes deregistered", func() bool {
		return rt.Node("a") == nil && rt.Node("b") == nil
	})
	if !rt.HostDown("h1") {
		t.Error("host not marked down")
	}
	if _, err := rt.StartNode("a", "h1"); err == nil {
		t.Error("node started on a down host")
	}
	if err := rt.RebootHost("h1"); err != nil {
		t.Fatal(err)
	}
	n2, err := rt.StartNode("a", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if !n2.Restarted() {
		t.Error("post-reboot start not flagged as restart")
	}
	if err := rt.CrashHost("mars"); err == nil {
		t.Error("unknown host crash accepted")
	}
	if err := rt.RebootHost("mars"); err == nil {
		t.Error("unknown host reboot accepted")
	}
	rt.KillAll()
	rt.Wait(5 * time.Second)
}

// TestAutoNotify derives the §5.3 notify lists from fault specifications:
// watcher's fault references target, so every state of target must notify
// watcher — without any hand-written notify clauses.
func TestAutoNotify(t *testing.T) {
	var fired atomic.Int32
	plainSpec := func() *spec.StateMachine {
		m, err := spec.ParseStateMachine(`
global_state_list
  BEGIN
  A
  B
  CRASH
  EXIT
end_global_state_list
event_list
  go_b
end_event_list
state A
  go_b B
state B
state CRASH
state EXIT
`)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	defs := []NodeDef{
		{
			Nickname: "watcher", Spec: plainSpec(),
			Faults: []faultexpr.Spec{{
				Name: "f", Expr: faultexpr.MustParse("(target:B)"), Mode: faultexpr.Once,
			}},
			App: scriptApp{
				main: func(h *Handle) {
					h.NotifyEvent("A")
					for fired.Load() == 0 {
						if !h.Sleep(time.Millisecond) {
							return
						}
					}
				},
				inject: func(h *Handle, fault string) { fired.Add(1) },
			},
		},
		{
			Nickname: "target", Spec: plainSpec(),
			App: scriptApp{main: func(h *Handle) {
				h.NotifyEvent("A")
				h.Sleep(5 * time.Millisecond)
				h.NotifyEvent("go_b")
				h.Sleep(20 * time.Millisecond)
			}},
		},
	}
	AutoNotify(defs)
	// target's states now notify watcher; watcher's notify lists unchanged.
	if nl := defs[1].Spec.NotifyList("B"); len(nl) != 1 || nl[0] != "watcher" {
		t.Fatalf("derived notify list = %v", nl)
	}
	if nl := defs[0].Spec.NotifyList("B"); len(nl) != 0 {
		t.Fatalf("watcher gained a notify list: %v", nl)
	}

	rt := newTestRuntime(t)
	for _, d := range defs {
		if err := rt.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	rt.StartNode("watcher", "h1")
	rt.StartNode("target", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if fired.Load() != 1 {
		t.Error("fault did not fire with derived notify lists")
	}
}
