package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/vclock"
)

// TestStateViewCopyOnWrite pins the COW contract the notification hot path
// relies on: no copy per mutation, at most one copy per version however
// many snapshots are taken, and handed-out snapshots immutable.
func TestStateViewCopyOnWrite(t *testing.T) {
	v := newStateView()
	v.set("m1", "A")
	v.set("m2", "B")
	ver := v.Version()

	s1 := v.Snapshot()
	s2 := v.Snapshot()
	if reflect.ValueOf(s1).Pointer() != reflect.ValueOf(s2).Pointer() {
		t.Error("unchanged view returned a fresh copy per Snapshot call")
	}

	// A no-op set must not invalidate the cache or advance the version.
	v.set("m1", "A")
	if v.Version() != ver {
		t.Errorf("no-op set bumped version %d -> %d", ver, v.Version())
	}
	if reflect.ValueOf(v.Snapshot()).Pointer() != reflect.ValueOf(s1).Pointer() {
		t.Error("no-op set invalidated the cached snapshot")
	}

	// An effective set bumps the version and copies on the next Snapshot;
	// the old snapshot must keep its pre-change contents.
	v.set("m1", "C")
	if v.Version() != ver+1 {
		t.Errorf("effective set: version %d, want %d", v.Version(), ver+1)
	}
	s3 := v.Snapshot()
	if reflect.ValueOf(s3).Pointer() == reflect.ValueOf(s1).Pointer() {
		t.Error("snapshot not refreshed after mutation")
	}
	if s1["m1"] != "A" || s3["m1"] != "C" {
		t.Errorf("snapshots not isolated: old=%v new=%v", s1, s3)
	}

	if s, ok := v.StateOf("m2"); !ok || s != "B" {
		t.Errorf("StateOf(m2) = %q, %v", s, ok)
	}
}

// TestNodeViewSnapshot drives ViewSnapshot through a running node: the
// snapshot must reflect the node's own state transitions as the partial
// view tracks them.
func TestNodeViewSnapshot(t *testing.T) {
	rt := New(Config{})
	defer rt.Shutdown()
	rt.AddHost("h1", vclock.ClockConfig{})
	sm, err := spec.ParseStateMachine(`
global_state_list
  BEGIN
  A
  B
  CRASH
  EXIT
end_global_state_list
event_list
  go
end_event_list
state A
  go B
state B
state CRASH
state EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	step := make(chan struct{})
	if err := rt.Register(NodeDef{
		Nickname: "sv", Spec: sm,
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			<-step
			h.NotifyEvent("go")
			<-h.Done()
		}},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := rt.StartNode("sv", "h1")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, n, "A")
	if v := n.ViewSnapshot(); v["sv"] != "A" {
		t.Errorf("view after init = %v, want sv:A", v)
	}
	before := n.ViewSnapshot()
	close(step)
	waitState(t, n, "B")
	if v := n.ViewSnapshot(); v["sv"] != "B" {
		t.Errorf("view after go = %v, want sv:B", v)
	}
	if before["sv"] != "A" {
		t.Errorf("earlier snapshot mutated: %v", before)
	}
	rt.KillAll()
	rt.Wait(time.Second)
}

func waitState(t *testing.T, n *Node, want string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := n.CurrentState(); ok && s == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	s, _ := n.CurrentState()
	t.Fatalf("node never reached %s (at %q)", want, s)
}
