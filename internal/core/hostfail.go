package core

import (
	"fmt"

	"repro/internal/faultexpr"
)

// This file implements two features the thesis describes but left
// unimplemented:
//
//   - Host crash and reboot (§3.6.4: "This support for host crash and
//     reboot has not yet been implemented in Loki"): crashing a host takes
//     its local daemon and every node on it down at once; after a reboot,
//     nodes may be restarted there.
//   - Automatic notify-list derivation (§5.3: "This process of obtaining
//     the notify lists could possibly be automated in future versions of
//     Loki"): the notify lists a study needs follow from the fault
//     specifications — machine M must notify machine W whenever one of W's
//     fault expressions references M's state.

// CrashHost simulates a host failure: every node running on the host
// crashes (recorded in its timeline and notified per its CRASH notify
// list), and the host refuses new nodes until RebootHost. Crashing a host
// owned by another endpoint forwards the operation there.
func (r *Runtime) CrashHost(name string) error {
	r.mu.Lock()
	hs, ok := r.hosts[name]
	if !ok {
		r.mu.Unlock()
		if r.hostIsRemote(name) {
			return r.forwardChaosToOwner(name, chaosOp{Op: "crashhost", A: name})
		}
		return fmt.Errorf("core: unknown host %q", name)
	}
	hs.down = true
	var victims []*Node
	for _, n := range r.nodes {
		if n.Host() == name {
			victims = append(victims, n)
		}
	}
	r.mu.Unlock()
	for _, n := range victims {
		n.crash()
	}
	return nil
}

// RebootHost brings a crashed host back; its local daemon reconnects
// (§3.6.4) and nodes may be started on it again. Rebooting a host owned
// by another endpoint forwards the operation there.
func (r *Runtime) RebootHost(name string) error {
	r.mu.Lock()
	hs, ok := r.hosts[name]
	if !ok {
		r.mu.Unlock()
		if r.hostIsRemote(name) {
			return r.forwardChaosToOwner(name, chaosOp{Op: "reboothost", A: name})
		}
		return fmt.Errorf("core: unknown host %q", name)
	}
	hs.down = false
	r.mu.Unlock()
	return nil
}

// HostDown reports whether the named host is currently crashed.
func (r *Runtime) HostDown(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	hs, ok := r.hosts[name]
	return ok && hs.down
}

// AutoNotify fills in the notify lists of every definition's state machine
// specification from the fault specifications of the whole study: if any
// fault of machine W references machine M, then every state of M notifies
// W. (Notifying on every state is the sound closure: W must observe M
// *leaving* a state of interest, which manifests as M entering an
// arbitrary other state.) Existing notify entries are preserved; the specs
// are modified in place. Call before Register.
func AutoNotify(defs []NodeDef) {
	// watchers[M] = set of machines whose faults reference M.
	watchers := make(map[string]map[string]bool)
	for _, def := range defs {
		for _, f := range def.Faults {
			for _, m := range faultexpr.Machines(f.Expr) {
				if m == def.Nickname {
					continue // self-observation needs no notification
				}
				if watchers[m] == nil {
					watchers[m] = make(map[string]bool)
				}
				watchers[m][def.Nickname] = true
			}
		}
	}
	for _, def := range defs {
		watch := watchers[def.Nickname]
		if len(watch) == 0 || def.Spec == nil {
			continue
		}
		for _, stateName := range def.Spec.StateOrder {
			st := def.Spec.States[stateName]
			have := make(map[string]bool, len(st.Notify))
			for _, n := range st.Notify {
				have[n] = true
			}
			for w := range watch {
				if !have[w] {
					st.Notify = append(st.Notify, w)
				}
			}
			sortNotify(st.Notify)
		}
	}
}

func sortNotify(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
