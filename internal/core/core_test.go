package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultexpr"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// scriptApp builds test applications from closures.
type scriptApp struct {
	main   func(h *Handle)
	inject func(h *Handle, fault string)
}

func (a scriptApp) Main(h *Handle) {
	if a.main != nil {
		a.main(h)
	}
}

func (a scriptApp) InjectFault(h *Handle, fault string) {
	if a.inject != nil {
		a.inject(h, fault)
	}
}

// simpleSpec: BEGIN -> A -> B -> C with notify lists on every state.
func simpleSpec(notify ...string) *spec.StateMachine {
	doc := fmt.Sprintf(`
global_state_list
  BEGIN
  A
  B
  C
  CRASH
  EXIT
end_global_state_list
event_list
  go_b
  go_c
end_event_list
state A notify %[1]s
  go_b B
state B notify %[1]s
  go_c C
state C notify %[1]s
state CRASH notify %[1]s
state EXIT notify %[1]s
`, joinSp(notify))
	m, err := spec.ParseStateMachine(doc)
	if err != nil {
		panic(err)
	}
	return m
}

func joinSp(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt := New(Config{Logf: t.Logf})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.AddHost("h2", vclock.ClockConfig{Offset: 3e6, DriftPPM: 40})
	return rt
}

func TestNodeLifecycleExit(t *testing.T) {
	rt := newTestRuntime(t)
	err := rt.Register(NodeDef{
		Nickname: "sm1",
		Spec:     simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.NotifyEvent("go_b")
			h.NotifyEvent("go_c")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := rt.StartNode("sm1", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Wait(5 * time.Second) {
		t.Fatal("experiment timed out")
	}
	if n.Outcome() != "exited" {
		t.Fatalf("outcome = %s", n.Outcome())
	}
	tl := n.Timeline()
	var states []string
	for _, e := range tl.Entries {
		if e.Kind == timeline.StateChange {
			states = append(states, e.NewState)
		}
	}
	want := []string{"A", "B", "C", "EXIT"}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
	// Timestamps must be non-decreasing.
	var prev vclock.Ticks = -1
	for _, e := range tl.Entries {
		if e.Time < prev {
			t.Fatalf("timeline timestamps go backwards: %v", tl.Entries)
		}
		prev = e.Time
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	if got := rt.Outcomes()["sm1"]; got != "exited" {
		t.Errorf("Outcomes()[sm1] = %q", got)
	}
}

func TestFirstEventInitializesState(t *testing.T) {
	rt := newTestRuntime(t)
	// First notification can name a state directly (§3.5.7: "the first
	// event notification ... is considered as a state").
	rt.Register(NodeDef{
		Nickname: "direct", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			if err := h.NotifyEvent("B"); err != nil {
				t.Errorf("init to state B: %v", err)
			}
		}},
	})
	// Or it can be an event with a BEGIN transition.
	beginSpec, err := spec.ParseStateMachine(`
global_state_list
  BEGIN
  A
end_global_state_list
event_list
  START
end_event_list
state BEGIN
  START A
state A
`)
	if err != nil {
		t.Fatal(err)
	}
	rt.Register(NodeDef{
		Nickname: "viaBegin", Spec: beginSpec,
		App: scriptApp{main: func(h *Handle) {
			if err := h.NotifyEvent("START"); err != nil {
				t.Errorf("BEGIN transition: %v", err)
			}
		}},
	})
	// An unknown first event errors.
	rt.Register(NodeDef{
		Nickname: "bad", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			if err := h.NotifyEvent("go_b"); err == nil {
				t.Error("go_b accepted as first event without BEGIN transition")
			}
		}},
	})
	for _, nick := range []string{"direct", "viaBegin", "bad"} {
		if _, err := rt.StartNode(nick, "h1"); err != nil {
			t.Fatal(err)
		}
	}
	rt.Wait(5 * time.Second)
}

func TestNotificationsMaintainPartialView(t *testing.T) {
	rt := newTestRuntime(t)
	var injected atomic.Int32
	// watcher injects f1 when target reaches B.
	rt.Register(NodeDef{
		Nickname: "watcher",
		Spec:     simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "f1", Expr: faultexpr.MustParse("(target:B)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				// Stay alive until injected or done.
				for injected.Load() == 0 {
					if !h.Sleep(time.Millisecond) {
						return
					}
				}
			},
			inject: func(h *Handle, fault string) { injected.Add(1) },
		},
	})
	rt.Register(NodeDef{
		Nickname: "target",
		Spec:     simpleSpec("watcher"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(5 * time.Millisecond)
			h.NotifyEvent("go_b")
			h.Sleep(20 * time.Millisecond)
		}},
	})
	if _, err := rt.StartNode("watcher", "h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StartNode("target", "h2"); err != nil {
		t.Fatal(err)
	}
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if injected.Load() != 1 {
		t.Fatalf("injected = %d, want 1", injected.Load())
	}
	// The injection must be in the watcher's timeline.
	tl := rt.Store().Get("watcher")
	inj := tl.Injections()
	if len(inj) != 1 || inj[0].Fault != "f1" {
		t.Fatalf("injections = %+v", inj)
	}
}

func TestCrashNotifiesAndRecords(t *testing.T) {
	rt := newTestRuntime(t)
	var sawCrash atomic.Int32
	rt.Register(NodeDef{
		Nickname: "observer",
		Spec:     simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "onCrash", Expr: faultexpr.MustParse("(dying:CRASH)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				for sawCrash.Load() == 0 {
					if !h.Sleep(time.Millisecond) {
						return
					}
				}
			},
			inject: func(h *Handle, fault string) { sawCrash.Add(1) },
		},
	})
	rt.Register(NodeDef{
		Nickname: "dying",
		Spec:     simpleSpec("observer"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(5 * time.Millisecond)
			h.Crash()
		}},
	})
	rt.StartNode("observer", "h1")
	dying, _ := rt.StartNode("dying", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if dying.Outcome() != "crashed" {
		t.Errorf("outcome = %s", dying.Outcome())
	}
	if sawCrash.Load() != 1 {
		t.Errorf("observer did not see the crash")
	}
	// The dying node's timeline records the CRASH state change.
	last, ok := rt.Store().Get("dying").LastState()
	if !ok || last != spec.StateCrash {
		t.Errorf("last state = %q", last)
	}
}

func TestPanicIsACrash(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "panicky", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			panic("injected memory corruption")
		}},
	})
	n, _ := rt.StartNode("panicky", "h1")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if n.Outcome() != "crashed" {
		t.Errorf("outcome = %s, want crashed", n.Outcome())
	}
}

func TestRestartOnDifferentHost(t *testing.T) {
	rt := newTestRuntime(t)
	runs := make(chan string, 2)
	rt.Register(NodeDef{
		Nickname: "phoenix", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			runs <- h.HostName()
			if !h.Restarted() {
				h.NotifyEvent("A")
				h.Crash()
				return
			}
			h.NotifyEvent("B") // restarted path
		}},
	})
	n1, err := rt.StartNode("phoenix", "h1")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first run to crash", func() bool { return n1.Outcome() == "crashed" })

	n2, err := rt.StartNode("phoenix", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if !n2.Restarted() {
		t.Error("second run not flagged as restart")
	}
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if n2.Outcome() != "exited" {
		t.Errorf("second outcome = %s", n2.Outcome())
	}
	<-runs
	if h2 := <-runs; h2 != "h2" {
		t.Errorf("restart host = %s", h2)
	}
	// One timeline spans both runs, with host attribution for both hosts.
	tl := rt.Store().Get("phoenix")
	hostsSeen := map[string]bool{}
	for _, e := range tl.Entries {
		if e.Kind == timeline.HostChange {
			hostsSeen[e.Host] = true
		}
	}
	if !hostsSeen["h1"] || !hostsSeen["h2"] {
		t.Errorf("host changes = %v, want h1 and h2", hostsSeen)
	}
	if err := tl.Validate(); err != nil {
		t.Errorf("combined timeline invalid: %v", err)
	}
}

func TestRestartSeedsViewFromLiveNodes(t *testing.T) {
	rt := newTestRuntime(t)
	var injected atomic.Int32
	// stable sits in state B forever; rejoiner's fault needs (stable:B) and
	// fires only if the restarted node's view was seeded.
	rt.Register(NodeDef{
		Nickname: "stable", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.NotifyEvent("go_b")
			h.Sleep(100 * time.Millisecond)
		}},
	})
	rt.Register(NodeDef{
		Nickname: "rejoiner", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "needsSeed",
			Expr: faultexpr.MustParse("((stable:B) & (rejoiner:A))"),
			Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				h.Sleep(10 * time.Millisecond)
			},
			inject: func(h *Handle, fault string) { injected.Add(1) },
		},
	})
	rt.StartNode("stable", "h1")
	waitFor(t, "stable to reach B", func() bool {
		n := rt.Node("stable")
		if n == nil {
			return false
		}
		s, _ := n.CurrentState()
		return s == "B"
	})
	rt.StartNode("rejoiner", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	if injected.Load() != 1 {
		t.Error("fault needing seeded view did not fire")
	}
}

func TestDroppedNotificationToDeadNode(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	rt := New(Config{Logf: func(f string, a ...interface{}) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	}})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.Register(NodeDef{
		Nickname: "talker", Spec: simpleSpec("ghost"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
		}},
	})
	rt.StartNode("talker", "h1")
	rt.Wait(5 * time.Second)
	waitFor(t, "dropped-notification warning", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range logs {
			if contains([]string{l}, l) && len(l) > 0 && containsStr(l, "target not executing") {
				return true
			}
		}
		return false
	})
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOfStr(s, sub) >= 0)
}

func indexOfStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestKillAllOnTimeout(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "hog", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			<-h.Done() // never exits voluntarily
		}},
	})
	n, _ := rt.StartNode("hog", "h1")
	if rt.Wait(50 * time.Millisecond) {
		t.Fatal("hung experiment reported as completed")
	}
	if n.Outcome() != "killed" {
		t.Errorf("outcome = %s, want killed", n.Outcome())
	}
}

func TestWatchdogDeclaresSilentNodeCrashed(t *testing.T) {
	rt := New(Config{
		WatchdogInterval: 5 * time.Millisecond,
		WatchdogTimeout:  25 * time.Millisecond,
		Logf:             t.Logf,
	})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	block := make(chan struct{})
	rt.Register(NodeDef{
		Nickname: "mute", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			<-block // hang without heartbeats
		}},
	})
	n, _ := rt.StartNode("mute", "h1")
	waitFor(t, "watchdog crash", func() bool { return n.Outcome() == "crashed" })
	close(block)
	rt.Wait(5 * time.Second)
	if last, ok := rt.Store().Get("mute").LastState(); !ok || last != spec.StateCrash {
		t.Errorf("watchdog crash not recorded; last state %q", last)
	}
}

func TestAppBus(t *testing.T) {
	rt := newTestRuntime(t)
	got := make(chan AppMessage, 1)
	rt.Register(NodeDef{
		Nickname: "rx", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			if m, ok := h.WaitMessage(3 * time.Second); ok {
				got <- m
			}
		}},
	})
	rt.Register(NodeDef{
		Nickname: "tx", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			for !h.Send("rx", "ping") {
				if !h.Sleep(time.Millisecond) {
					return
				}
			}
		}},
	})
	rt.StartNode("rx", "h1")
	rt.StartNode("tx", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	select {
	case m := <-got:
		if m.From != "tx" || m.Payload != "ping" {
			t.Errorf("message = %+v", m)
		}
	default:
		t.Fatal("no message received")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "solo", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			if h.Send("nobody", 1) {
				t.Error("send to unknown node succeeded")
			}
			if n := h.Broadcast("x"); n != 0 {
				t.Errorf("broadcast reached %d nodes", n)
			}
		}},
	})
	rt.StartNode("solo", "h1")
	rt.Wait(5 * time.Second)
}

func TestCentralDaemonRunExperiment(t *testing.T) {
	rt := newTestRuntime(t)
	for _, nick := range []string{"a", "b"} {
		nick := nick
		rt.Register(NodeDef{
			Nickname: nick, Spec: simpleSpec(),
			App: scriptApp{main: func(h *Handle) {
				h.NotifyEvent("A")
				h.NotifyEvent("go_b")
			}},
		})
	}
	cd := NewCentralDaemon(rt)
	nodes := []spec.NodeEntry{{Nickname: "a", Host: "h1"}, {Nickname: "b", Host: "h2"}}
	for round := 0; round < 3; round++ {
		res, err := cd.RunExperiment(nodes, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("experiment did not complete")
		}
		if len(res.Timelines) != 2 {
			t.Fatalf("timelines = %d", len(res.Timelines))
		}
		if res.Outcomes["a"] != "exited" || res.Outcomes["b"] != "exited" {
			t.Fatalf("outcomes = %v", res.Outcomes)
		}
		// Each experiment starts from a clean store: timelines must not
		// accumulate entries across rounds.
		for _, tl := range res.Timelines {
			count := 0
			for _, e := range tl.Entries {
				if e.Kind == timeline.StateChange {
					count++
				}
			}
			if count != 3 { // A, B, EXIT
				t.Fatalf("round %d: %s has %d state changes", round, tl.Owner, count)
			}
		}
	}
}

func TestCentralDaemonSkipsNonAutoStart(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "auto", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) { h.NotifyEvent("A") }},
	})
	rt.Register(NodeDef{
		Nickname: "manual", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) { h.NotifyEvent("A") }},
	})
	cd := NewCentralDaemon(rt)
	res, err := cd.RunExperiment([]spec.NodeEntry{
		{Nickname: "auto", Host: "h1"},
		{Nickname: "manual"}, // no host: dynamic entry only
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ran := res.Outcomes["manual"]; ran {
		t.Error("non-auto-start node was started")
	}
}

func TestRegisterValidation(t *testing.T) {
	rt := newTestRuntime(t)
	if err := rt.Register(NodeDef{}); err == nil {
		t.Error("empty def accepted")
	}
	def := NodeDef{Nickname: "x", Spec: simpleSpec(), App: scriptApp{}}
	if err := rt.Register(def); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(def); err == nil {
		t.Error("duplicate nickname accepted")
	}
}

func TestStartNodeErrors(t *testing.T) {
	rt := newTestRuntime(t)
	if _, err := rt.StartNode("ghost", "h1"); err == nil {
		t.Error("unregistered node started")
	}
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.Sleep(50 * time.Millisecond)
		}},
	})
	if _, err := rt.StartNode("n", "mars"); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := rt.StartNode("n", "h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StartNode("n", "h2"); err == nil {
		t.Error("double start accepted")
	}
	rt.KillAll()
	rt.Wait(5 * time.Second)
}

func TestEventWithoutTransitionIgnored(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			if err := h.NotifyEvent("go_c"); err != nil { // no transition from A
				t.Errorf("unmatched event errored: %v", err)
			}
			if s, _ := h.node.CurrentState(); s != "A" {
				t.Errorf("state changed to %q on unmatched event", s)
			}
		}},
	})
	rt.StartNode("n", "h1")
	rt.Wait(5 * time.Second)
}

func TestNotificationDelayInjectsStaleness(t *testing.T) {
	// With a large notification delay, a fast target transits B->C before
	// the watcher's view sees B: the fault fires on a stale view. This is
	// the §3.2.2 race that the analysis phase later catches.
	rt := New(Config{RemoteDelay: 30 * time.Millisecond, Logf: t.Logf})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.AddHost("h2", vclock.ClockConfig{})

	injectedAt := make(chan vclock.Ticks, 1)
	rt.Register(NodeDef{
		Nickname: "watcher", Spec: simpleSpec(),
		Faults: []faultexpr.Spec{{
			Name: "late", Expr: faultexpr.MustParse("(fast:B)"), Mode: faultexpr.Once,
		}},
		App: scriptApp{
			main: func(h *Handle) {
				h.NotifyEvent("A")
				h.Sleep(100 * time.Millisecond)
			},
			inject: func(h *Handle, fault string) {
				select {
				case injectedAt <- h.Now():
				default:
				}
			},
		},
	})
	rt.Register(NodeDef{
		Nickname: "fast", Spec: simpleSpec("watcher"),
		App: scriptApp{main: func(h *Handle) {
			h.NotifyEvent("A")
			h.NotifyEvent("go_b")
			h.NotifyEvent("go_c") // leaves B immediately
		}},
	})
	rt.StartNode("watcher", "h1")
	fast, _ := rt.StartNode("fast", "h2")
	if !rt.Wait(5 * time.Second) {
		t.Fatal("timeout")
	}
	select {
	case at := <-injectedAt:
		// The injection happened; ground truth says fast had already left
		// B (it exited C long before the 30ms-delayed notification landed).
		var leftB vclock.Ticks
		for _, e := range fast.Timeline().Entries {
			if e.Kind == timeline.StateChange && e.NewState == "C" {
				leftB = e.Time
			}
		}
		if leftB == 0 {
			t.Fatal("fast never reached C")
		}
		if at <= leftB {
			t.Skip("scheduling was fast enough that the injection won the race; acceptable")
		}
	default:
		t.Fatal("stale-view fault never fired")
	}
}

func TestConcurrentNotificationsManyNodes(t *testing.T) {
	rt := newTestRuntime(t)
	const n = 12
	var wg sync.WaitGroup
	nicks := make([]string, n)
	for i := 0; i < n; i++ {
		nicks[i] = fmt.Sprintf("n%02d", i)
	}
	for i := 0; i < n; i++ {
		others := make([]string, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, nicks[j])
			}
		}
		rt.Register(NodeDef{
			Nickname: nicks[i], Spec: simpleSpec(others...),
			App: scriptApp{main: func(h *Handle) {
				defer wg.Done()
				h.NotifyEvent("A")
				h.NotifyEvent("go_b")
				h.NotifyEvent("go_c")
			}},
		})
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		host := "h1"
		if i%2 == 1 {
			host = "h2"
		}
		if _, err := rt.StartNode(nicks[i], host); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Wait(10 * time.Second) {
		t.Fatal("timeout")
	}
	wg.Wait()
	for _, nick := range nicks {
		tl := rt.Store().Get(nick)
		if err := tl.Validate(); err != nil {
			t.Errorf("%s: %v", nick, err)
		}
	}
}

func TestHandleString(t *testing.T) {
	rt := newTestRuntime(t)
	rt.Register(NodeDef{
		Nickname: "n", Spec: simpleSpec(),
		App: scriptApp{main: func(h *Handle) {
			if h.String() == "" || h.Nickname() != "n" || h.HostName() != "h1" {
				t.Error("handle identity broken")
			}
			if len(h.Args()) != 1 || h.Args()[0] != "-x" {
				t.Errorf("args = %v", h.Args())
			}
			h.Note("custom note")
			h.NotifyEvent("A")
		}},
		Args: []string{"-x"},
	})
	rt.StartNode("n", "h1")
	rt.Wait(5 * time.Second)
	found := false
	for _, e := range rt.Store().Get("n").Entries {
		if e.Kind == timeline.Note && e.Text == "custom note" {
			found = true
		}
	}
	if !found {
		t.Error("note not recorded")
	}
}
