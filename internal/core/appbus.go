package core

import (
	"fmt"
	"time"
)

// AppMessage is an application-level message between nodes. The system
// under study needs its own communication channel — Loki's notification
// LAN is deliberately separate (§2.4 notes the runtime "can use a LAN
// separate from the one used by the system") — so the reproduction provides
// this bus in place of the application's own sockets.
type AppMessage struct {
	From    string
	Payload interface{}
}

const inboxCapacity = 256

// Send delivers a payload to another node's application inbox. It reports
// false when the destination is not a live node or its inbox is full —
// datagram semantics: the distributed system under study must tolerate
// loss, that is the point of injecting faults into it.
//
// The message first crosses the interposition layer (netem.go): a
// partition or an installed link filter may silently drop, delay,
// duplicate, or corrupt it. In-flight losses still report true — like a
// lost datagram, the sender cannot tell. Filter-chain *verdicts* are
// identical on both testbeds (simnet.FilterSet), but delivery timing is
// testbed-specific: this bus has no latency model, so duplicate copies
// arrive together, where the DES network samples a latency per copy.
func (h *Handle) Send(to string, payload interface{}) bool {
	h.node.touch()
	rt := h.node.rt
	target := rt.Node(to)
	if target == nil {
		// Not live here — but possibly live in another process. The
		// message is shaped by the LOCAL interposition layer before it
		// reaches the socket (the send-side fault hook), then framed and
		// shipped; replicated chaos ops keep peer endpoints' shaping
		// state converged. True is returned like any datagram send: the
		// sender cannot observe a remote drop.
		if toHost, remote := rt.remoteHostFor(to); remote {
			h.sendRemote(to, toHost, payload)
			return true
		}
		return false
	}
	fate, blocked := rt.shapeAppMessage(h.node.Host(), target.Host(), payload)
	if blocked || fate.Drop {
		return true // lost in flight; datagram senders are not told
	}
	if fate.Payload != nil {
		payload = fate.Payload
	}
	m := AppMessage{From: h.Nickname(), Payload: payload}
	if fate.Delay > 0 {
		epoch := rt.Epoch()
		copies := fate.Copies
		rt.clk.AfterFunc(fate.Delay.Duration(), func() {
			if rt.Epoch() != epoch {
				return
			}
			for c := 0; c <= copies; c++ {
				target.handle.deliver(m, "")
			}
		})
		return true
	}
	ok := target.handle.deliver(m, h.Nickname())
	for c := 0; c < fate.Copies; c++ {
		target.handle.deliver(m, "")
	}
	return ok
}

// sendRemote ships one shaped application message toward the endpoint
// owning toHost. In-flight fates (drop, delay, duplicates, corruption)
// are resolved here, on the sender's side of the wire, so socket and
// in-memory links obey one filter semantics.
func (h *Handle) sendRemote(to, toHost string, payload interface{}) {
	rt := h.node.rt
	fromHost := h.node.Host()
	fate, blocked := rt.shapeAppMessage(fromHost, toHost, payload)
	if blocked || fate.Drop {
		return // lost in flight
	}
	if fate.Payload != nil {
		payload = fate.Payload
	}
	nick := h.Nickname()
	send := func() {
		for c := 0; c <= fate.Copies; c++ {
			rt.sendRemoteApp(nick, fromHost, to, toHost, payload)
		}
	}
	if fate.Delay > 0 {
		rt.ExpAfterFunc(fate.Delay.Duration(), send)
		return
	}
	send()
}

// deliver places a message in the handle's inbox, non-blocking, and wakes
// any goroutine blocked in WaitMessage/Sleep on the node. from, when
// non-empty, names the sender for the inbox-full diagnostic.
func (h *Handle) deliver(m AppMessage, from string) bool {
	select {
	case h.inboxChan() <- m:
		h.node.wakeWaiters()
		return true
	default:
		if from != "" {
			h.node.rt.cfg.Logf("core: app inbox of %s full; dropping message from %s", h.Nickname(), from)
		}
		return false
	}
}

// Broadcast sends a payload to every other live node — including nodes
// placed on hosts owned by other endpoints, which may or may not be live
// there — returning how many accepted it. Without remote endpoints (the
// single-process default) this is the original cheap loop: broadcasts
// are on the apps' heartbeat paths and must not pay clustered-mode
// bookkeeping.
func (h *Handle) Broadcast(payload interface{}) int {
	n := 0
	remote := h.node.rt.remoteNicknames() // nil without a multi-endpoint transport
	if len(remote) == 0 {
		for _, nick := range h.node.rt.LiveNodes() {
			if nick == h.Nickname() {
				continue
			}
			if h.Send(nick, payload) {
				n++
			}
		}
		return n
	}
	sent := map[string]bool{h.Nickname(): true}
	for _, nick := range h.node.rt.LiveNodes() {
		if sent[nick] {
			continue
		}
		sent[nick] = true
		if h.Send(nick, payload) {
			n++
		}
	}
	for _, nick := range remote {
		if sent[nick] {
			continue
		}
		sent[nick] = true
		if h.Send(nick, payload) {
			n++
		}
	}
	return n
}

// Inbox returns the node's application message channel. Messages sent to a
// crashed node stay undelivered; after restart a node begins with an empty
// inbox, like a rebooted process.
func (h *Handle) Inbox() <-chan AppMessage { return h.inboxChan() }

// WaitMessage receives the next application message, giving up after
// timeout or when the node is stopped.
func (h *Handle) WaitMessage(timeout time.Duration) (AppMessage, bool) {
	n := h.node
	n.touch()
	clk := n.rt.clk
	inbox := h.inboxChan()
	deadline := clk.Now().Add(timeout)
	w := clk.NewWaiter()
	n.addWaiter(w)
	defer n.removeWaiter(w)
	for {
		select {
		case m := <-inbox:
			n.touch()
			return m, true
		default:
		}
		if n.stopping() {
			return AppMessage{}, false
		}
		rem := deadline.Sub(clk.Now())
		if rem <= 0 {
			return AppMessage{}, false
		}
		w.Wait(rem)
	}
}

func (h *Handle) inboxChan() chan AppMessage {
	h.busMu.Lock()
	defer h.busMu.Unlock()
	if h.inbox == nil {
		h.inbox = make(chan AppMessage, inboxCapacity)
	}
	return h.inbox
}

// String implements fmt.Stringer.
func (h *Handle) String() string {
	return fmt.Sprintf("Handle(%s on %s)", h.Nickname(), h.HostName())
}
