package core

import (
	"fmt"
	"time"
)

// AppMessage is an application-level message between nodes. The system
// under study needs its own communication channel — Loki's notification
// LAN is deliberately separate (§2.4 notes the runtime "can use a LAN
// separate from the one used by the system") — so the reproduction provides
// this bus in place of the application's own sockets.
type AppMessage struct {
	From    string
	Payload interface{}
}

const inboxCapacity = 256

// Send delivers a payload to another node's application inbox. It reports
// false when the destination is not a live node or its inbox is full —
// datagram semantics: the distributed system under study must tolerate
// loss, that is the point of injecting faults into it.
func (h *Handle) Send(to string, payload interface{}) bool {
	h.node.touch()
	target := h.node.rt.Node(to)
	if target == nil {
		return false
	}
	inbox := target.handle.inboxChan()
	select {
	case inbox <- AppMessage{From: h.Nickname(), Payload: payload}:
		return true
	default:
		h.node.rt.cfg.Logf("core: app inbox of %s full; dropping message from %s", to, h.Nickname())
		return false
	}
}

// Broadcast sends a payload to every other live node, returning how many
// accepted it.
func (h *Handle) Broadcast(payload interface{}) int {
	n := 0
	for _, nick := range h.node.rt.LiveNodes() {
		if nick == h.Nickname() {
			continue
		}
		if h.Send(nick, payload) {
			n++
		}
	}
	return n
}

// Inbox returns the node's application message channel. Messages sent to a
// crashed node stay undelivered; after restart a node begins with an empty
// inbox, like a rebooted process.
func (h *Handle) Inbox() <-chan AppMessage { return h.inboxChan() }

// WaitMessage receives the next application message, giving up after
// timeout or when the node is stopped.
func (h *Handle) WaitMessage(timeout time.Duration) (AppMessage, bool) {
	h.node.touch()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-h.inboxChan():
		h.node.touch()
		return m, true
	case <-timer.C:
		return AppMessage{}, false
	case <-h.node.done:
		return AppMessage{}, false
	}
}

func (h *Handle) inboxChan() chan AppMessage {
	h.busMu.Lock()
	defer h.busMu.Unlock()
	if h.inbox == nil {
		h.inbox = make(chan AppMessage, inboxCapacity)
	}
	return h.inbox
}

// String implements fmt.Stringer.
func (h *Handle) String() string {
	return fmt.Sprintf("Handle(%s on %s)", h.Nickname(), h.HostName())
}
