package core

import (
	"fmt"
	"time"
)

// AppMessage is an application-level message between nodes. The system
// under study needs its own communication channel — Loki's notification
// LAN is deliberately separate (§2.4 notes the runtime "can use a LAN
// separate from the one used by the system") — so the reproduction provides
// this bus in place of the application's own sockets.
type AppMessage struct {
	From    string
	Payload interface{}
}

const inboxCapacity = 256

// Send delivers a payload to another node's application inbox. It reports
// false when the destination is not a live node or its inbox is full —
// datagram semantics: the distributed system under study must tolerate
// loss, that is the point of injecting faults into it.
//
// The message first crosses the interposition layer (netem.go): a
// partition or an installed link filter may silently drop, delay,
// duplicate, or corrupt it. In-flight losses still report true — like a
// lost datagram, the sender cannot tell. Filter-chain *verdicts* are
// identical on both testbeds (simnet.FilterSet), but delivery timing is
// testbed-specific: this bus has no latency model, so duplicate copies
// arrive together, where the DES network samples a latency per copy.
func (h *Handle) Send(to string, payload interface{}) bool {
	h.node.touch()
	target := h.node.rt.Node(to)
	if target == nil {
		return false
	}
	rt := h.node.rt
	fate, blocked := rt.shapeAppMessage(h.node.Host(), target.Host(), payload)
	if blocked || fate.Drop {
		return true // lost in flight; datagram senders are not told
	}
	if fate.Payload != nil {
		payload = fate.Payload
	}
	m := AppMessage{From: h.Nickname(), Payload: payload}
	if fate.Delay > 0 {
		epoch := rt.Epoch()
		copies := fate.Copies
		time.AfterFunc(fate.Delay.Duration(), func() {
			if rt.Epoch() != epoch {
				return
			}
			for c := 0; c <= copies; c++ {
				target.handle.deliver(m, "")
			}
		})
		return true
	}
	ok := target.handle.deliver(m, h.Nickname())
	for c := 0; c < fate.Copies; c++ {
		target.handle.deliver(m, "")
	}
	return ok
}

// deliver places a message in the handle's inbox, non-blocking. from, when
// non-empty, names the sender for the inbox-full diagnostic.
func (h *Handle) deliver(m AppMessage, from string) bool {
	select {
	case h.inboxChan() <- m:
		return true
	default:
		if from != "" {
			h.node.rt.cfg.Logf("core: app inbox of %s full; dropping message from %s", h.Nickname(), from)
		}
		return false
	}
}

// Broadcast sends a payload to every other live node, returning how many
// accepted it.
func (h *Handle) Broadcast(payload interface{}) int {
	n := 0
	for _, nick := range h.node.rt.LiveNodes() {
		if nick == h.Nickname() {
			continue
		}
		if h.Send(nick, payload) {
			n++
		}
	}
	return n
}

// Inbox returns the node's application message channel. Messages sent to a
// crashed node stay undelivered; after restart a node begins with an empty
// inbox, like a rebooted process.
func (h *Handle) Inbox() <-chan AppMessage { return h.inboxChan() }

// WaitMessage receives the next application message, giving up after
// timeout or when the node is stopped.
func (h *Handle) WaitMessage(timeout time.Duration) (AppMessage, bool) {
	h.node.touch()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-h.inboxChan():
		h.node.touch()
		return m, true
	case <-timer.C:
		return AppMessage{}, false
	case <-h.node.done:
		return AppMessage{}, false
	}
}

func (h *Handle) inboxChan() chan AppMessage {
	h.busMu.Lock()
	defer h.busMu.Unlock()
	if h.inbox == nil {
		h.inbox = make(chan AppMessage, inboxCapacity)
	}
	return h.inbox
}

// String implements fmt.Stringer.
func (h *Handle) String() string {
	return fmt.Sprintf("Handle(%s on %s)", h.Nickname(), h.HostName())
}
