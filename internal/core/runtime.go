// Package core implements the enhanced Loki runtime (thesis Chapter 3):
// per-node state machines, state machine transports, fault parsers,
// recorders and probes, one local daemon per host, and a central daemon
// coordinating experiments. The architecture is the thesis's chosen design —
// partially distributed with all communication through the daemons
// (§3.4.2) — with dynamic entry, exit, crash and restart of nodes (§3.6).
//
// The multi-host testbed is virtualized in one process: each Host couples a
// name with a hidden-error vclock.Clock, daemons exchange notifications
// through asynchronous channels with configurable injected latency (the
// thesis quotes ~20 µs IPC and ~150 µs TCP on its LAN), and the
// application under study runs as one goroutine per node, instrumented
// through a probe Handle exactly as §3.5.7 prescribes. Nothing blocks the
// application while notifications are in transit, so the partial view of
// global state can go stale — the race Loki's off-line analysis exists to
// catch.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faultexpr"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Host is a virtual machine in the testbed: a name and a local clock.
type Host struct {
	Name  string
	Clock *vclock.Clock
}

// Config configures a Runtime.
type Config struct {
	// Source is the shared physical time base. Defaults to a SystemSource.
	Source vclock.Source
	// Clock is the scheduling clock the runtime blocks and defers through.
	// Defaults to the wall clock; a virtual-time campaign supplies a
	// clock.Virtual here (with Source set to its Source()) so delivery
	// delays, watchdog polls, and experiment timeouts run in simulated
	// time.
	Clock clock.Clock
	// LocalDelay is the injected latency for same-host (IPC) notification
	// hops; the thesis measures ~20 µs (§3.4.2).
	LocalDelay time.Duration
	// RemoteDelay is the injected latency for host-to-host (TCP) hops;
	// the thesis measures ~150 µs.
	RemoteDelay time.Duration
	// WatchdogInterval is how often local daemons probe their nodes for
	// liveness; zero disables the watchdog (§3.6.2's second detection
	// path).
	WatchdogInterval time.Duration
	// WatchdogTimeout is the staleness threshold after which a silent
	// node is declared crashed. The thesis gives "the user the flexibility
	// to fix the timeout value".
	WatchdogTimeout time.Duration
	// Logf, if set, receives runtime diagnostics (dropped notifications,
	// watchdog kills). Defaults to the Obs sink's logger when one is
	// configured, else to discarding them.
	Logf func(format string, args ...interface{})
	// Obs, if set, receives runtime metrics and per-experiment traces.
	// The metric bundle is resolved once at New; per-experiment traces are
	// attached with SetTrace. Nil disables observability at zero cost on
	// the notification hot path.
	Obs *obs.Sink
	// Transport, if set, carries traffic for hosts owned by other
	// endpoints (transport.go). Nil — or a transport whose topology is
	// all-local, like transport.SingleProcess — keeps every path
	// in-memory.
	Transport transport.Transport
}

// Runtime is one Loki testbed: hosts, daemons, and nodes. Create with New,
// add hosts with AddHost, register node definitions with Register, start
// them with StartNode, and wait for experiment completion with Wait.
type Runtime struct {
	cfg    Config
	source vclock.Source
	clk    clock.Clock

	// om is the pre-resolved metric bundle (nil when metrics are off), and
	// trace the current experiment's trace (nil pointer loads when tracing
	// is off) — both shaped so the disabled path is one pointer test, no
	// allocation, no interface dispatch.
	om    *obs.RuntimeMetrics
	trace atomic.Pointer[obs.Trace]

	// netem is the application-bus traffic shaping state (netem.go); it
	// has its own lock and is consulted on every Handle.Send.
	netem *netem

	mu            sync.Mutex
	hosts         map[string]*hostState
	defs          map[string]*NodeDef
	nodes         map[string]*Node // live nodes by nickname
	store         *timeline.Store  // the "NFS-mounted" timeline repository (§3.8)
	outcomes      map[string]string
	placement     map[string]string // nickname -> expected host, for remote routing
	remoteNicks   []string          // cached sorted remote nicknames (transport.go)
	remoteNicksOK bool
	active        int
	doneWaiters   []clock.Waiter // Wait callers, woken when active hits zero
	stopped       bool
	sealed        bool                            // experiment over; no nodes may start until reset
	actionHook    func(n *Node, f faultexpr.Spec) // built-in action dispatcher (netem.go)
	transportHook func(m transport.Message)       // cluster-protocol frames (transport.go)
}

type hostState struct {
	host   Host
	daemon *LocalDaemon
	down   bool // crashed host (§3.6.4); no nodes may start until reboot
}

// NodeDef is the per-state-machine configuration a study supplies: the
// state machine specification, the fault specification, and the
// instrumented application (§5.6's study file contents).
type NodeDef struct {
	Nickname string
	Spec     *spec.StateMachine
	Faults   []faultexpr.Spec
	App      App
	Args     []string
}

// New creates an empty runtime.
func New(cfg Config) *Runtime {
	if cfg.Source == nil {
		cfg.Source = vclock.NewSystemSource()
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Logf == nil {
		if cfg.Obs != nil && cfg.Obs.Log != nil {
			cfg.Logf = cfg.Obs.Log.Func(obs.Warn, "core")
		} else {
			cfg.Logf = func(string, ...interface{}) {}
		}
	}
	r := &Runtime{
		cfg:       cfg,
		om:        cfg.Obs.RuntimeMetrics(),
		source:    cfg.Source,
		clk:       cfg.Clock,
		netem:     newNetem(1),
		hosts:     make(map[string]*hostState),
		defs:      make(map[string]*NodeDef),
		nodes:     make(map[string]*Node),
		store:     timeline.NewStore(),
		outcomes:  make(map[string]string),
		placement: make(map[string]string),
	}
	return r
}

// Source returns the runtime's physical time base.
func (r *Runtime) Source() vclock.Source { return r.source }

// Clock returns the runtime's scheduling clock.
func (r *Runtime) Clock() clock.Clock { return r.clk }

// Logf forwards to the runtime's configured diagnostic sink (Config.Logf;
// a no-op by default). The chaos engine reports action failures here.
func (r *Runtime) Logf(format string, args ...interface{}) { r.cfg.Logf(format, args...) }

// SetTrace attaches (or, with nil, detaches) the current experiment's
// trace. The campaign engine attaches a fresh trace before each runtime
// phase and detaches it before analysis; runtime emitters load the pointer
// atomically, so a nil trace costs one atomic load on the hot path.
func (r *Runtime) SetTrace(t *obs.Trace) { r.trace.Store(t) }

// Trace returns the attached experiment trace, or nil.
func (r *Runtime) Trace() *obs.Trace { return r.trace.Load() }

// AddHost adds a virtual host with the given hidden clock error and starts
// its local daemon. Duplicate names are a configuration bug and panic.
func (r *Runtime) AddHost(name string, clockCfg vclock.ClockConfig) *Host {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.hosts[name]; dup {
		panic(fmt.Sprintf("core: duplicate host %q", name))
	}
	h := Host{Name: name, Clock: vclock.NewClock(r.source, clockCfg)}
	hs := &hostState{host: h}
	hs.daemon = newLocalDaemon(r, h)
	r.hosts[name] = hs
	return &hs.host
}

// Hosts returns the host names, sorted.
func (r *Runtime) Hosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hosts))
	for n := range r.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HostClock returns the clock of the named host, or nil.
func (r *Runtime) HostClock(name string) *vclock.Clock {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hs, ok := r.hosts[name]; ok {
		return hs.host.Clock
	}
	return nil
}

// Register adds a node definition. Every state machine that could possibly
// start during an experiment must be registered with a unique name before
// the experiment runs (§3.8).
func (r *Runtime) Register(def NodeDef) error {
	if def.Nickname == "" || def.Spec == nil || def.App == nil {
		return fmt.Errorf("core: node definition needs nickname, spec, and app")
	}
	if err := def.Spec.Validate(); err != nil {
		return fmt.Errorf("core: node %q: %w", def.Nickname, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[def.Nickname]; dup {
		return fmt.Errorf("core: duplicate node definition %q", def.Nickname)
	}
	d := def
	r.defs[def.Nickname] = &d
	return nil
}

// Store returns the shared timeline repository.
func (r *Runtime) Store() *timeline.Store { return r.store }

// StartNode starts (or restarts) the named node on the named host. A node
// whose nickname already has a stored timeline is a restart (§3.6.3); its
// Handle reports Restarted and its recorder appends to the old timeline.
func (r *Runtime) StartNode(nickname, host string) (*Node, error) {
	r.mu.Lock()
	def, ok := r.defs[nickname]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: unknown node %q (not registered)", nickname)
	}
	hs, ok := r.hosts[host]
	if !ok {
		r.mu.Unlock()
		if r.hostIsRemote(host) {
			// The node belongs to another endpoint: forward the start
			// (chaos restarts reach here). The start is asynchronous and
			// yields no local handle.
			if err := r.forwardChaosToOwner(host, chaosOp{Op: "startnode", Nick: nickname, A: host}); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return nil, fmt.Errorf("core: unknown host %q", host)
	}
	if hs.down {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: host %q is down", host)
	}
	if _, live := r.nodes[nickname]; live {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: node %q is already running", nickname)
	}
	if r.stopped {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: runtime is stopped")
	}
	if r.sealed {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: experiment is sealed; node %q may not start", nickname)
	}

	local := r.store.Get(nickname)
	restarted := local != nil && len(local.Entries) > 0
	if local == nil {
		local = newLocalTimeline(def)
		r.store.Put(local)
	}
	n := newNode(r, def, hs, local, restarted)
	r.nodes[nickname] = n
	r.active++
	r.mu.Unlock()

	// Seed the restarted (or fresh) node's partial view from the states of
	// the live machines (§3.6.3: "obtains state updates from all the other
	// state machines").
	n.seedView(r.snapshotStates(nickname))

	hs.daemon.adopt(n)
	n.run()
	return n, nil
}

// snapshotStates returns the current local states of all live nodes except
// the named one.
func (r *Runtime) snapshotStates(except string) map[string]string {
	r.mu.Lock()
	nodes := make([]*Node, 0, len(r.nodes))
	for nick, n := range r.nodes {
		if nick != except {
			nodes = append(nodes, n)
		}
	}
	r.mu.Unlock()
	out := make(map[string]string, len(nodes))
	for _, n := range nodes {
		if s, ok := n.CurrentState(); ok {
			out[n.Nickname()] = s
		}
	}
	return out
}

// Node returns the live node with the given nickname, or nil.
func (r *Runtime) Node(nickname string) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[nickname]
}

// SnapshotTimeline returns a safely readable view of a machine's timeline
// while the experiment may still be running: a deep copy for live nodes, or
// the final timeline for finished ones (no further writes can occur). It
// returns nil for unknown nicknames. Supervisors use this to watch for
// crashes mid-experiment.
func (r *Runtime) SnapshotTimeline(nickname string) *timeline.Local {
	r.mu.Lock()
	n, live := r.nodes[nickname]
	var done *timeline.Local
	if !live {
		done = r.store.Get(nickname)
	}
	r.mu.Unlock()
	if live {
		return n.recorder.Snapshot()
	}
	return done
}

// TimelineNames returns the nicknames with timelines this experiment,
// sorted.
func (r *Runtime) TimelineNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Names()
}

// LiveNodes returns the nicknames of running nodes, sorted.
func (r *Runtime) LiveNodes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Wait blocks until the experiment completes — no nodes are executing,
// because all of them exited or crashed (§3.6.1) — or until timeout, in
// which case the experiment is declared hung and every node is killed, as
// the central daemon does (§3.5.1). It reports whether completion was
// natural (true) or by timeout (false).
func (r *Runtime) Wait(timeout time.Duration) bool {
	w := r.clk.NewWaiter()
	r.mu.Lock()
	r.doneWaiters = append(r.doneWaiters, w)
	r.mu.Unlock()
	defer r.dropDoneWaiter(w)

	var timedOut atomic.Bool
	if timeout > 0 {
		t := r.clk.AfterFunc(timeout, func() {
			timedOut.Store(true)
			r.KillAll()
		})
		defer t.Stop()
	}
	for {
		r.mu.Lock()
		active := r.active
		r.mu.Unlock()
		if active == 0 {
			return !timedOut.Load()
		}
		w.Wait(-1)
	}
}

func (r *Runtime) dropDoneWaiter(w clock.Waiter) {
	r.mu.Lock()
	for i, dw := range r.doneWaiters {
		if dw == w {
			r.doneWaiters = append(r.doneWaiters[:i], r.doneWaiters[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// KillAll forcibly terminates every live node (central daemon abort path).
func (r *Runtime) KillAll() {
	r.mu.Lock()
	nodes := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	for _, n := range nodes {
		n.kill()
	}
}

// Shutdown kills all nodes and stops daemons. The runtime cannot be reused.
func (r *Runtime) Shutdown() {
	r.KillAll()
	r.mu.Lock()
	r.stopped = true
	hosts := make([]*hostState, 0, len(r.hosts))
	for _, hs := range r.hosts {
		hosts = append(hosts, hs)
	}
	r.mu.Unlock()
	for _, hs := range hosts {
		hs.daemon.stop()
	}
}

// nodeFinished is called by a node when it exits or crashes; it checks for
// experiment completion (§3.5.2: local daemons check on every exit/crash).
func (r *Runtime) nodeFinished(n *Node) {
	r.mu.Lock()
	var wake []clock.Waiter
	if r.nodes[n.Nickname()] == n {
		delete(r.nodes, n.Nickname())
		r.outcomes[n.Nickname()] = n.Outcome()
		r.active--
		if r.active == 0 {
			wake = append(wake, r.doneWaiters...)
		}
	}
	r.mu.Unlock()
	for _, w := range wake {
		w.Wake()
	}
}

// Outcomes returns how each finished node terminated ("exited", "crashed",
// or "killed"), keyed by nickname. Restarted nodes report their most recent
// termination.
func (r *Runtime) Outcomes() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.outcomes))
	for k, v := range r.outcomes {
		out[k] = v
	}
	return out
}

// ResetExperiment clears per-experiment state (the timeline store, the
// outcome table, app-bus traffic shaping, and host down flags) so the
// runtime can host the next experiment of a study. It must not be called
// while nodes are live.
func (r *Runtime) ResetExperiment() {
	r.mu.Lock()
	if len(r.nodes) > 0 {
		r.mu.Unlock()
		panic("core: ResetExperiment with live nodes")
	}
	r.store.Reset()
	r.outcomes = make(map[string]string)
	r.sealed = false
	// Crashed hosts reboot and stepped clocks are restored between
	// experiments: each experiment starts on a healthy testbed, whatever
	// faults the last one injected — otherwise one experiment's clockstep
	// would poison every later experiment on this runtime, making
	// accepted sets depend on which worker ran it.
	for _, hs := range r.hosts {
		hs.down = false
		hs.host.Clock.ClearStep()
	}
	r.mu.Unlock()
	r.netem.reset()
}

// SealExperiment marks the experiment over: node starts are refused and
// pending experiment-scoped timers (ExpAfterFunc) are voided, until the
// next ResetExperiment. The central daemon seals after completion so that
// straggling restart work — a supervisor poll, a chaos crashrestart timer —
// cannot resurrect nodes into a finished experiment.
func (r *Runtime) SealExperiment() {
	r.mu.Lock()
	r.sealed = true
	r.mu.Unlock()
	r.netem.bumpEpoch()
}

// route delivers a state notification from one machine to another through
// the daemon hierarchy: sender's local daemon, then (if remote) the
// receiver's local daemon, then the receiver's transport (§3.5.2). The
// delay models the two-IPC-plus-one-TCP path of the chosen design.
func (r *Runtime) route(fromHost string, note stateNote, to string) {
	r.mu.Lock()
	target, live := r.nodes[to]
	r.mu.Unlock()
	if !live {
		// The node is not executing here — but it may be executing in
		// another process: placement decides. The socket hop replaces the
		// injected delay; its latency is real.
		if host, remote := r.remoteHostFor(to); remote {
			r.sendRemoteNote(host, note, to)
			return
		}
		// "If there is a notification for a state machine that is
		// currently not executing, the notification is discarded with a
		// warning message." (§3.6.1)
		if m := r.om; m != nil {
			m.DroppedNotifications.Inc()
		}
		r.cfg.Logf("core: dropping notification %s->%s (%s): target not executing", note.From, to, note.State)
		return
	}
	if m := r.om; m != nil {
		m.Notifications.Inc()
	}
	delay := r.cfg.RemoteDelay
	if target.Host() == fromHost {
		delay = r.cfg.LocalDelay
	}
	deliver := func() { target.remoteNotify(note) }
	if delay <= 0 {
		r.clk.Go(deliver)
		return
	}
	r.clk.AfterFunc(delay, deliver)
}

// newLocalTimeline builds the timeline header for a fresh node, extending
// the spec's lists with the reserved names the runtime itself records
// (§3.5.7).
func newLocalTimeline(def *NodeDef) *timeline.Local {
	meta := timeline.Meta{Owner: def.Nickname}
	meta.GlobalStates = append(meta.GlobalStates, def.Spec.GlobalStates...)
	for _, s := range []string{spec.StateCrash, spec.StateExit} {
		if !contains(meta.GlobalStates, s) {
			meta.GlobalStates = append(meta.GlobalStates, s)
		}
	}
	meta.Events = append(meta.Events, def.Spec.Events...)
	// Reserved runtime events, plus every state name: the first probe
	// notification may name a state directly to initialize the machine
	// (§3.5.7), and it is recorded as the triggering "event".
	extra := append([]string{spec.EventCrash, spec.EventRestart, "EXIT"}, meta.GlobalStates...)
	for _, e := range extra {
		if !contains(meta.Events, e) {
			meta.Events = append(meta.Events, e)
		}
	}
	meta.Faults = append(meta.Faults, def.Faults...)
	// The state_machine_list names every machine this node's view can
	// contain: itself plus everyone it notifies or watches.
	machines := map[string]bool{def.Nickname: true}
	for _, m := range def.Spec.MachinesNotified() {
		machines[m] = true
	}
	for _, f := range def.Faults {
		for _, m := range faultexpr.Machines(f.Expr) {
			machines[m] = true
		}
	}
	for m := range machines {
		meta.Machines = append(meta.Machines, m)
	}
	sort.Strings(meta.Machines)
	return &timeline.Local{Meta: meta}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
