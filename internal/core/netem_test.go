package core

import (
	"testing"
	"time"

	"repro/internal/faultexpr"
	"repro/internal/simnet"
	"repro/internal/spec"
	"repro/internal/vclock"
)

// busSpec is a trivial machine so nodes can start.
func busSpec(t *testing.T) *spec.StateMachine {
	t.Helper()
	sm, err := spec.ParseStateMachine(`
global_state_list
  BEGIN
  UP
  CRASH
  EXIT
end_global_state_list
event_list
  GO
end_event_list
state UP
state CRASH
state EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// waitingApp parks until killed; tests drive the bus through the handle.
type waitingApp struct{}

func (waitingApp) Main(h *Handle)              { <-h.Done() }
func (waitingApp) InjectFault(*Handle, string) {}

// busPair starts two nodes on two hosts and returns their handles.
func busPair(t *testing.T) (*Runtime, *Handle, *Handle) {
	t.Helper()
	rt := New(Config{})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.AddHost("h2", vclock.ClockConfig{})
	for _, nick := range []string{"a", "b"} {
		if err := rt.Register(NodeDef{Nickname: nick, Spec: busSpec(t), App: waitingApp{}}); err != nil {
			t.Fatal(err)
		}
	}
	na, err := rt.StartNode("a", "h1")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := rt.StartNode("b", "h2")
	if err != nil {
		t.Fatal(err)
	}
	return rt, na.Handle(), nb.Handle()
}

func recvWithin(t *testing.T, h *Handle, d time.Duration) (AppMessage, bool) {
	t.Helper()
	return h.WaitMessage(d)
}

func TestPartitionBlocksAppBus(t *testing.T) {
	rt, ha, hb := busPair(t)
	if !ha.Send("b", "hello") {
		t.Fatal("baseline send failed")
	}
	if m, ok := recvWithin(t, hb, time.Second); !ok || m.Payload != "hello" {
		t.Fatalf("baseline receive: ok=%v m=%+v", ok, m)
	}

	rt.PartitionHosts("h1", "h2")
	if !rt.HostsPartitioned("h1", "h2") {
		t.Fatal("partition not recorded")
	}
	if !ha.Send("b", "lost") {
		t.Fatal("partitioned send should report true (datagram loss is silent)")
	}
	if m, ok := recvWithin(t, hb, 50*time.Millisecond); ok {
		t.Fatalf("message crossed a partition: %+v", m)
	}

	rt.HealHosts("h1", "h2")
	ha.Send("b", "healed")
	if m, ok := recvWithin(t, hb, time.Second); !ok || m.Payload != "healed" {
		t.Fatalf("after heal: ok=%v m=%+v", ok, m)
	}
}

func TestLinkFilterDropDelayDuplicateCorrupt(t *testing.T) {
	rt, ha, hb := busPair(t)
	link := simnet.Link{From: "h1", To: "h2"}

	rt.InstallLinkFilter(link, "drop", simnet.DropFilter{P: 1})
	ha.Send("b", "gone")
	if m, ok := recvWithin(t, hb, 50*time.Millisecond); ok {
		t.Fatalf("message survived P=1 drop: %+v", m)
	}
	if !rt.RemoveLinkFilter(link, "drop") {
		t.Fatal("RemoveLinkFilter: not found")
	}

	rt.InstallLinkFilter(link, "dup", simnet.DuplicateFilter{P: 1, Copies: 2})
	ha.Send("b", "multi")
	for i := 0; i < 3; i++ {
		if m, ok := recvWithin(t, hb, time.Second); !ok || m.Payload != "multi" {
			t.Fatalf("copy %d: ok=%v m=%+v", i, ok, m)
		}
	}
	rt.RemoveLinkFilter(link, "dup")

	rt.InstallLinkFilter(link, "corrupt", simnet.CorruptFilter{P: 1})
	ha.Send("b", "clean")
	m, ok := recvWithin(t, hb, time.Second)
	if !ok {
		t.Fatal("corrupted message not delivered")
	}
	if c, isC := m.Payload.(simnet.Corrupted); !isC || c.Original != "clean" {
		t.Fatalf("payload = %#v, want Corrupted{clean}", m.Payload)
	}
	rt.RemoveLinkFilter(link, "corrupt")

	rt.InstallLinkFilter(link, "slow", simnet.DelayFilter{Extra: vclock.FromDuration(30 * time.Millisecond)})
	start := time.Now()
	ha.Send("b", "late")
	if _, ok := recvWithin(t, hb, time.Second); !ok {
		t.Fatal("delayed message never arrived")
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("delayed message arrived after %v, want >= ~30ms", el)
	}
}

func TestResetExperimentClearsNetemAndHosts(t *testing.T) {
	rt := New(Config{})
	defer rt.Shutdown()
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.AddHost("h2", vclock.ClockConfig{})
	rt.PartitionHosts("h1", "h2")
	rt.InstallLinkFilter(simnet.Link{From: "h1", To: "h2"}, "f", simnet.DropFilter{P: 1})
	if err := rt.CrashHost("h2"); err != nil {
		t.Fatal(err)
	}
	if err := rt.StepHostClock("h1", 5e6); err != nil {
		t.Fatal(err)
	}
	epoch := rt.Epoch()

	rt.ResetExperiment()

	if rt.HostsPartitioned("h1", "h2") {
		t.Error("partition survived reset")
	}
	if got := rt.HostClock("h1").TrueStepped(); got != 0 {
		t.Errorf("clock step survived reset: %d", got)
	}
	if rt.RemoveLinkFilter(simnet.Link{From: "h1", To: "h2"}, "f") {
		t.Error("link filter survived reset")
	}
	if rt.HostDown("h2") {
		t.Error("crashed host not rebooted by reset")
	}
	if rt.Epoch() == epoch {
		t.Error("epoch did not advance")
	}
}

func TestExpAfterFuncScopedToEpoch(t *testing.T) {
	rt := New(Config{})
	defer rt.Shutdown()
	fired := make(chan struct{}, 2)
	rt.ExpAfterFunc(30*time.Millisecond, func() { fired <- struct{}{} })
	rt.ResetExperiment() // advances the epoch: the timer must not fire
	select {
	case <-fired:
		t.Fatal("timer from a previous experiment fired")
	case <-time.After(80 * time.Millisecond):
	}
	rt.ExpAfterFunc(10*time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("current-epoch timer never fired")
	}
}

func TestActionFaultDispatchesToHook(t *testing.T) {
	rt := New(Config{})
	defer rt.Shutdown()
	rt.AddHost("h1", vclock.ClockConfig{})

	dispatched := make(chan faultexpr.Spec, 1)
	rt.SetFaultActionHook(func(n *Node, f faultexpr.Spec) { dispatched <- f })

	fault, ok, err := faultexpr.ParseSpecLine("cut (a:UP) once partition(h1)")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if err := rt.Register(NodeDef{
		Nickname: "a", Spec: busSpec(t), Faults: []faultexpr.Spec{fault},
		App: appFunc(func(h *Handle) {
			h.NotifyEvent("UP")
			<-h.Done()
		}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StartNode("a", "h1"); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-dispatched:
		if f.Action == nil || f.Action.Name != "partition" {
			t.Errorf("dispatched %+v", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("action fault never dispatched")
	}
	rt.KillAll()
}

// appFunc adapts a function to App with a no-op InjectFault.
type appFunc func(h *Handle)

func (f appFunc) Main(h *Handle)            { f(h) }
func (appFunc) InjectFault(*Handle, string) {}
