package core

import "repro/internal/faultexpr"

// stateView is a node's partial view of global state (§3.6.3) with
// versioned copy-on-write snapshots. The probe's notification path used to
// deep-copy the whole map on every local event and remote notify before
// running the fault parser; instead the live map now backs trigger
// evaluation directly (it implements faultexpr.View), and a copy is made
// only when a caller asks for a stable Snapshot — at most once per
// version, however many snapshots are requested.
//
// All methods must be called with the owning node's mu held; handed-out
// snapshots are immutable and safe to read after the lock is released.
type stateView struct {
	m       map[string]string
	version uint64
	// snap caches the copy for the current version; nil means dirty.
	snap faultexpr.MapView
}

func newStateView() *stateView {
	return &stateView{m: make(map[string]string)}
}

// StateOf implements faultexpr.View against the live map.
func (v *stateView) StateOf(machine string) (string, bool) {
	s, ok := v.m[machine]
	return s, ok
}

// set records a machine's new state, invalidating any cached snapshot.
func (v *stateView) set(machine, state string) {
	if s, ok := v.m[machine]; ok && s == state {
		return // no-op change: the view (and its version) is unchanged
	}
	v.m[machine] = state
	v.version++
	v.snap = nil
}

// Version returns the mutation counter; it advances on every effective set.
func (v *stateView) Version() uint64 { return v.version }

// Snapshot returns an immutable copy of the current view, copying only when
// the view changed since the last snapshot.
func (v *stateView) Snapshot() faultexpr.MapView {
	if v.snap == nil {
		cp := make(faultexpr.MapView, len(v.m))
		for m, s := range v.m {
			cp[m] = s
		}
		v.snap = cp
	}
	return v.snap
}
