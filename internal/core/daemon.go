package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// LocalDaemon is the per-host daemon (§3.5.2). In this reproduction its
// transport duties are carried by Runtime.route (the two-IPC-one-TCP path
// is modeled with injected delays); what remains here is node adoption,
// the watchdog, and experiment-end bookkeeping.
type LocalDaemon struct {
	rt   *Runtime
	host Host

	mu    sync.Mutex
	nodes map[string]*Node

	stopped atomic.Bool
	stopW   clock.Waiter
}

func newLocalDaemon(rt *Runtime, host Host) *LocalDaemon {
	d := &LocalDaemon{
		rt:    rt,
		host:  host,
		nodes: make(map[string]*Node),
		stopW: rt.clk.NewWaiter(),
	}
	if rt.cfg.WatchdogInterval > 0 && rt.cfg.WatchdogTimeout > 0 {
		rt.clk.Go(d.watchdog)
	}
	return d
}

// adopt registers a node with its host's daemon: the thesis's "spawns a
// separate thread to service the state machine" moment (§3.5.2).
func (d *LocalDaemon) adopt(n *Node) {
	d.mu.Lock()
	d.nodes[n.Nickname()] = n
	d.mu.Unlock()
}

// nodeFinished removes a finished node.
func (d *LocalDaemon) nodeFinished(n *Node) {
	d.mu.Lock()
	if d.nodes[n.Nickname()] == n {
		delete(d.nodes, n.Nickname())
	}
	d.mu.Unlock()
}

// watchdog periodically checks adopted nodes for liveness; a node silent
// past the timeout is assumed crashed (§3.6.2). The poll blocks through
// the runtime clock, so under virtual time the scan happens at exact
// interval multiples of simulated time.
func (d *LocalDaemon) watchdog() {
	for {
		if d.stopped.Load() {
			return
		}
		d.stopW.Wait(d.rt.cfg.WatchdogInterval)
		if d.stopped.Load() {
			return
		}
		limit := vclock.FromDuration(d.rt.cfg.WatchdogTimeout)
		d.mu.Lock()
		var stale []*Node
		for _, n := range d.nodes {
			if n.staleFor() > limit {
				stale = append(stale, n)
			}
		}
		d.mu.Unlock()
		// Crash in nickname order: map iteration order must not leak into
		// the recorded timelines (virtual-time runs are byte-reproducible).
		sort.Slice(stale, func(i, j int) bool { return stale[i].Nickname() < stale[j].Nickname() })
		for _, n := range stale {
			d.rt.cfg.Logf("core: watchdog on %s: node %s silent for %v; declaring crashed",
				d.host.Name, n.Nickname(), n.staleFor().Duration())
			if m := d.rt.om; m != nil {
				m.WatchdogKills.Inc()
			}
			n.crash()
		}
	}
}

func (d *LocalDaemon) stop() {
	d.stopped.Store(true)
	d.stopW.Wake()
}

// CentralDaemon manages experiments (§3.5.1): it starts the state machines
// the node file marks for auto-start, aborts hung experiments after the
// user's timeout, and collects results at completion.
type CentralDaemon struct {
	rt *Runtime
}

// NewCentralDaemon wraps a runtime.
func NewCentralDaemon(rt *Runtime) *CentralDaemon {
	return &CentralDaemon{rt: rt}
}

// ExperimentResult is one experiment's runtime-phase output: the local
// timelines of all state machines that ran, and how each terminated.
type ExperimentResult struct {
	// Completed is false when the experiment hit the timeout and was
	// aborted (its results should be discarded).
	Completed bool
	// Timelines holds each machine's local timeline, by nickname order.
	Timelines []*timeline.Local
	// Outcomes maps nickname to "exited", "crashed", or "killed".
	Outcomes map[string]string
}

// RunExperiment executes one experiment: reset the timeline store, start
// every auto-start node from the node file, then wait for completion or
// timeout. Dynamically entering nodes (restarts, late joiners) are the
// application's business via Runtime.StartNode during the run.
func (c *CentralDaemon) RunExperiment(nodes []spec.NodeEntry, timeout time.Duration) (*ExperimentResult, error) {
	c.rt.ResetExperiment()

	// Record the node file's placement for transport routing (frames for
	// nodes hosted by other endpoints). Merged, not replaced: a cluster
	// member passes only its local entries here but has already installed
	// the full study placement.
	c.rt.AddPlacement(nodes)

	tr := c.rt.trace.Load()
	activateStart := time.Time{}
	if tr != nil {
		activateStart = c.rt.clk.Now()
	}
	for _, e := range nodes {
		if !e.AutoStart() {
			continue
		}
		if _, err := c.rt.StartNode(e.Nickname, e.Host); err != nil {
			c.rt.KillAll()
			c.rt.Wait(time.Second)
			return nil, err
		}
	}
	if tr != nil {
		tr.Span("activate", activateStart, c.rt.clk.Now())
	}

	completed := c.rt.Wait(timeout)
	// Seal before collecting: no supervisor poll or deferred chaos restart
	// may start nodes into a finished experiment. SealExperiment waits out
	// any experiment-scoped timer body already past its checks (the expMu
	// barrier) — but such a body may have restarted a node in the gap
	// between Wait observing zero activity and the seal taking effect, so
	// kill and await any straggler before collecting results.
	c.rt.SealExperiment()
	if tr != nil {
		detail := "completed"
		if !completed {
			detail = "timeout"
		}
		tr.Event(c.rt.clk.Now(), obs.CatPhase, "seal", detail)
	}
	if len(c.rt.LiveNodes()) > 0 {
		c.rt.KillAll()
		c.rt.Wait(time.Second)
	}

	res := &ExperimentResult{Completed: completed, Outcomes: c.rt.Outcomes()}
	res.Timelines = append(res.Timelines, c.rt.Store().All()...)
	return res, nil
}
