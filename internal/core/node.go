package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faultexpr"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// App is the instrumented application of one node — the thesis's appMain
// plus the probe's fault injection entry point (§3.5.7).
type App interface {
	// Main is the application body (the renamed main()). It runs on its
	// own goroutine and must return promptly once Handle.Done() closes.
	Main(h *Handle)
	// InjectFault performs the actual fault injection when the fault
	// parser demands it, and is free to do anything: corrupt app state,
	// call h.Crash(), drop messages. It runs on the runtime's dispatch
	// goroutines, concurrently with Main.
	InjectFault(h *Handle, fault string)
}

// stateNote is a state-change notification between state machines.
type stateNote struct {
	From  string
	State string
}

// Node is one basic component of the system under study together with its
// attached Loki runtime (§2.2.2): state machine, transport, fault parser,
// recorder, and probe handle.
type Node struct {
	rt        *Runtime
	def       *NodeDef
	host      *hostState
	recorder  *timeline.Recorder
	triggers  *faultexpr.TriggerSet
	handle    *Handle
	restarted bool

	mu      sync.Mutex
	state   string     // current local state ("" until initialized)
	view    *stateView // partial view of global state, incl. self
	started bool

	// lifeMu serializes terminal transitions (exit/crash/kill) with their
	// timeline records, so that a finished node's timeline is complete and
	// safely readable once the runtime reports completion. lifecycle is an
	// atomic mirror for lock-free status checks.
	lifeMu    sync.Mutex
	lifecycle int32 // 0 running, 1 exited, 2 crashed, 3 killed
	done      chan struct{}
	appDone   chan struct{}
	lastAlive atomic.Int64 // physical ticks of last activity, for the watchdog

	// waiters are the goroutines blocked in Handle.Sleep/WaitMessage on
	// this node, woken on message delivery and on every terminal
	// transition. A slice, not a map: wake order must be deterministic
	// under virtual time.
	wmu     sync.Mutex
	waiters []clock.Waiter
}

// Lifecycle outcomes.
const (
	lcRunning int32 = iota
	lcExited
	lcCrashed
	lcKilled
)

func newNode(r *Runtime, def *NodeDef, hs *hostState, local *timeline.Local, restarted bool) *Node {
	n := &Node{
		rt:        r,
		def:       def,
		host:      hs,
		recorder:  timeline.NewRecorder(local, hs.host.Name, hs.host.Clock),
		triggers:  faultexpr.NewTriggerSet(def.Faults),
		restarted: restarted,
		view:      newStateView(),
		done:      make(chan struct{}),
		appDone:   make(chan struct{}),
	}
	n.handle = &Handle{node: n}
	n.lastAlive.Store(int64(r.source.Now()))
	if restarted {
		n.recorder.RecordNote("restart on host " + hs.host.Name)
	}
	return n
}

// Nickname returns the node's state machine nickname.
func (n *Node) Nickname() string { return n.def.Nickname }

// Host returns the host the node runs on.
func (n *Node) Host() string { return n.host.host.Name }

// Restarted reports whether this node resumed an earlier timeline.
func (n *Node) Restarted() bool { return n.restarted }

// Handle returns the probe handle (for tests; the app receives it in Main).
func (n *Node) Handle() *Handle { return n.handle }

// CurrentState returns the node's local state, if initialized.
func (n *Node) CurrentState() (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.state != ""
}

// Timeline returns a snapshot of the node's local timeline.
func (n *Node) Timeline() *timeline.Local { return n.recorder.Snapshot() }

// seedView installs the initial partial view (§3.6.3 state updates).
func (n *Node) seedView(states map[string]string) {
	n.mu.Lock()
	for m, s := range states {
		n.view.set(m, s)
	}
	n.mu.Unlock()
}

// ViewSnapshot returns an immutable copy of the node's current partial
// view. The copy is made lazily, at most once per view version.
func (n *Node) ViewSnapshot() faultexpr.MapView {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Snapshot()
}

// run starts the application goroutine (through the runtime clock, so the
// virtual scheduler tracks it).
func (n *Node) run() {
	n.rt.clk.Go(func() {
		defer func() {
			if rec := recover(); rec != nil {
				// An uncaught panic in the application is a process crash
				// with the default signal handler (§3.6.2).
				n.rt.cfg.Logf("core: node %s panicked: %v", n.Nickname(), rec)
				n.crash()
			}
			close(n.appDone)
			n.finish()
		}()
		n.def.App.Main(n.handle)
	})
}

// addWaiter registers a goroutine blocked on this node's events.
func (n *Node) addWaiter(w clock.Waiter) {
	n.wmu.Lock()
	n.waiters = append(n.waiters, w)
	n.wmu.Unlock()
}

// removeWaiter deregisters w.
func (n *Node) removeWaiter(w clock.Waiter) {
	n.wmu.Lock()
	for i, nw := range n.waiters {
		if nw == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			break
		}
	}
	n.wmu.Unlock()
}

// wakeWaiters unblocks every goroutine waiting on this node — called when
// a message is delivered and when the node stops. Waking is cheap and
// spurious wakes are harmless (waiters loop and re-check).
func (n *Node) wakeWaiters() {
	n.wmu.Lock()
	ws := append([]clock.Waiter(nil), n.waiters...)
	n.wmu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// stopping reports whether the node has left the running state.
func (n *Node) stopping() bool { return atomic.LoadInt32(&n.lifecycle) != lcRunning }

// finish resolves the node's terminal state after Main returns.
func (n *Node) finish() {
	n.lifeMu.Lock()
	if atomic.LoadInt32(&n.lifecycle) == lcRunning {
		// Normal exit: record and notify (§3.6.2 "the node's state machine
		// sends an exit notification to all the other state machines").
		atomic.StoreInt32(&n.lifecycle, lcExited)
		at := n.recorder.Now()
		n.mu.Lock()
		n.state = spec.StateExit
		n.mu.Unlock()
		n.recorder.RecordStateChange("EXIT", spec.StateExit, at)
		if tr := n.rt.trace.Load(); tr != nil {
			tr.Event(n.rt.clk.Now(), obs.CatNode, n.Nickname(), "exited")
		}
		n.broadcast(spec.StateExit, n.exitNotifyList())
		close(n.done)
	}
	n.lifeMu.Unlock()
	n.wakeWaiters()
	n.host.daemon.nodeFinished(n)
	n.rt.nodeFinished(n)
}

// exitNotifyList: machines to tell about our exit — the EXIT state's notify
// list when given, else everyone we ever notify.
func (n *Node) exitNotifyList() []string {
	if def, ok := n.def.Spec.States[spec.StateExit]; ok && len(def.Notify) > 0 {
		return def.Notify
	}
	return n.def.Spec.MachinesNotified()
}

// crash marks the node crashed, records the crash event and state (§3.6.2:
// the daemon "writes the crash event to the local timeline"), and notifies
// the other machines per the CRASH state's notify list.
func (n *Node) crash() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	if atomic.LoadInt32(&n.lifecycle) != lcRunning {
		return
	}
	atomic.StoreInt32(&n.lifecycle, lcCrashed)
	at := n.recorder.Now()
	n.mu.Lock()
	n.state = spec.StateCrash
	n.mu.Unlock()
	n.recorder.RecordStateChange(spec.EventCrash, spec.StateCrash, at)
	if m := n.rt.om; m != nil {
		m.Crashes.Inc()
	}
	if tr := n.rt.trace.Load(); tr != nil {
		tr.Event(n.rt.clk.Now(), obs.CatNode, n.Nickname(), "crashed")
	}
	n.broadcast(spec.StateCrash, n.def.Spec.NotifyList(spec.StateCrash))
	close(n.done)
	n.wakeWaiters()
}

// kill force-terminates without recording a crash state transition beyond a
// note — the central daemon's abort path for hung experiments (§3.5.1).
func (n *Node) kill() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	if atomic.LoadInt32(&n.lifecycle) != lcRunning {
		return
	}
	atomic.StoreInt32(&n.lifecycle, lcKilled)
	n.recorder.RecordNote("killed by central daemon")
	close(n.done)
	n.wakeWaiters()
}

// Outcome reports how the node terminated: "running", "exited", "crashed",
// or "killed".
func (n *Node) Outcome() string {
	switch atomic.LoadInt32(&n.lifecycle) {
	case lcExited:
		return "exited"
	case lcCrashed:
		return "crashed"
	case lcKilled:
		return "killed"
	default:
		return "running"
	}
}

// localEvent is the probe's event notification path (§3.5.7 notifyEvent):
// track the local state, record, notify remote machines, and run the fault
// parser. The fault parser evaluates against the live view under the same
// lock as the mutation — no per-event copy — and only the expressions
// mentioning this machine are re-evaluated (the compiled trigger index).
func (n *Node) localEvent(event string) error {
	if atomic.LoadInt32(&n.lifecycle) != lcRunning {
		return fmt.Errorf("core: node %s is not running", n.Nickname())
	}
	at := n.recorder.Now()
	n.touch()

	n.mu.Lock()
	var next string
	switch {
	case n.state == "":
		// The first notification initializes the state machine (§3.5.7):
		// either it names a state directly, or BEGIN has a transition on it.
		if n.def.Spec.HasGlobalState(event) {
			next = event
		} else if s, ok := n.def.Spec.Next(spec.StateBegin, event); ok {
			next = s
		} else {
			n.mu.Unlock()
			return fmt.Errorf("core: node %s: first event %q is neither a state nor a BEGIN transition", n.Nickname(), event)
		}
	default:
		s, ok := n.def.Spec.Next(n.state, event)
		if !ok {
			n.mu.Unlock()
			n.rt.cfg.Logf("core: node %s: event %q has no transition from state %q; ignored", n.Nickname(), event, n.state)
			return nil
		}
		next = s
	}
	n.state = next
	n.view.set(n.Nickname(), next)
	fired := n.triggers.ObserveChange(n.Nickname(), n.view)
	n.mu.Unlock()

	n.recorder.RecordStateChange(event, next, at)
	if m := n.rt.om; m != nil {
		m.StateChanges.Inc()
	}
	if tr := n.rt.trace.Load(); tr != nil {
		tr.Event(n.rt.clk.Now(), obs.CatProbe, n.Nickname(), event+" -> "+next)
	}
	n.broadcast(next, n.def.Spec.NotifyList(next))
	n.inject(fired)
	return nil
}

// remoteNotify is the transport's delivery path for remote state changes.
func (n *Node) remoteNotify(note stateNote) {
	if atomic.LoadInt32(&n.lifecycle) != lcRunning {
		return
	}
	n.touch()
	n.mu.Lock()
	n.view.set(note.From, note.State)
	fired := n.triggers.ObserveChange(note.From, n.view)
	n.mu.Unlock()
	n.inject(fired)
}

// inject performs the demanded injections through the probe (§3.5.5),
// recording their times. It must be called without mu held: actions are
// free to call back into the node (h.Crash, h.Note, ...). Faults naming a
// built-in action dispatch to the fault-action hook (the chaos engine)
// when one is installed; otherwise they fall back to the application
// callback like any other fault.
func (n *Node) inject(fired []faultexpr.Spec) {
	for _, f := range fired {
		if atomic.LoadInt32(&n.lifecycle) != lcRunning {
			return
		}
		at := n.recorder.Now()
		n.recorder.RecordInjection(f.Name, at)
		if m := n.rt.om; m != nil {
			m.Injections.Inc()
		}
		tr := n.rt.trace.Load()
		if f.Action != nil {
			if hook := n.rt.faultActionHook(); hook != nil {
				if m := n.rt.om; m != nil {
					m.ChaosActions.Inc()
				}
				if tr != nil {
					tr.Event(n.rt.clk.Now(), obs.CatChaos, f.Name, n.Nickname())
				}
				hook(n, f)
				continue
			}
		}
		if tr != nil {
			tr.Event(n.rt.clk.Now(), obs.CatInject, f.Name, n.Nickname())
		}
		n.def.App.InjectFault(n.handle, f.Name)
	}
}

// broadcast sends a state notification to the listed machines through the
// daemons (§3.5.4). Self-notifications are meaningless and skipped.
func (n *Node) broadcast(state string, targets []string) {
	if len(targets) == 0 {
		return
	}
	note := stateNote{From: n.Nickname(), State: state}
	for _, to := range targets {
		if to == n.Nickname() {
			continue
		}
		n.rt.route(n.Host(), note, to)
	}
}

// touch refreshes the watchdog liveness timestamp.
func (n *Node) touch() { n.lastAlive.Store(int64(n.rt.source.Now())) }

// staleFor reports how long the node has been silent.
func (n *Node) staleFor() vclock.Ticks {
	return n.rt.source.Now() - vclock.Ticks(n.lastAlive.Load())
}

// Handle is the probe's interface to the node runtime — what the
// instrumented application calls (§3.5.7): notifyEvent, notifyOnCrash,
// notifyOnExit, plus the application bus this reproduction provides in
// place of the application's own sockets.
type Handle struct {
	node *Node

	busMu sync.Mutex
	inbox chan AppMessage
}

// Nickname returns the node's state machine name.
func (h *Handle) Nickname() string { return h.node.Nickname() }

// HostName returns the host the node is (currently) running on.
func (h *Handle) HostName() string { return h.node.Host() }

// Args returns the application arguments from the node definition.
func (h *Handle) Args() []string { return h.node.def.Args }

// Restarted reports whether this node is a restart of a crashed node
// (§3.6.3). The application uses it to choose its RESTART path (§5.5).
func (h *Handle) Restarted() bool { return h.node.Restarted() }

// NotifyEvent reports a local event to the state machine (§3.5.7). The
// first call initializes the state machine's state.
func (h *Handle) NotifyEvent(event string) error { return h.node.localEvent(event) }

// Note records a free-form message into the local timeline (§3.5.6).
func (h *Handle) Note(text string) { h.node.recorder.RecordNote(text) }

// Now reads the node's host clock.
func (h *Handle) Now() vclock.Ticks { return h.node.recorder.Now() }

// Crash simulates a process crash: the overridden-signal-handler path of
// §3.6.2 (notifyOnCrash). The crash is recorded, remote machines are
// notified per the CRASH notify list, and Done() closes. Main must return.
func (h *Handle) Crash() { h.node.crash() }

// Done is closed when the node must stop running: it crashed, was killed,
// or exited. Application loops must select on it.
func (h *Handle) Done() <-chan struct{} { return h.node.done }

// Crashed reports whether the node has crashed.
func (h *Handle) Crashed() bool { return atomic.LoadInt32(&h.node.lifecycle) == lcCrashed }

// Sleep pauses the application for d, returning false immediately if the
// node is stopped first. The application should use this instead of
// time.Sleep so kills are prompt (and so virtual time can skip the wait).
func (h *Handle) Sleep(d time.Duration) bool {
	n := h.node
	n.touch()
	if n.stopping() {
		return false
	}
	if d <= 0 {
		return true
	}
	clk := n.rt.clk
	deadline := clk.Now().Add(d)
	w := clk.NewWaiter()
	n.addWaiter(w)
	defer n.removeWaiter(w)
	for {
		if n.stopping() {
			return false
		}
		rem := deadline.Sub(clk.Now())
		if rem <= 0 {
			n.touch()
			return true
		}
		w.Wait(rem)
	}
}

// Clock returns the runtime's scheduling clock. Instrumented applications
// must take timestamps and measure elapsed time through it — never the
// time package — so the same application runs unchanged under virtual
// time.
func (h *Handle) Clock() clock.Clock { return h.node.rt.clk }

// Go spawns an application goroutine through the runtime clock. Any app
// goroutine that sleeps or waits must be started this way, or the virtual
// scheduler cannot see it.
func (h *Handle) Go(fn func()) { h.node.rt.clk.Go(fn) }

// Heartbeat refreshes the watchdog without any other effect. Long-running
// computations should call it; a node silent past the watchdog timeout is
// declared crashed (§3.6.2).
func (h *Handle) Heartbeat() { h.node.touch() }
