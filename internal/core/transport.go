package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// This file is the runtime's transport glue: when Config.Transport names
// an endpoint whose topology places some hosts in other processes, the
// runtime routes state notifications and application-bus messages for
// those hosts over the transport instead of the in-memory tables, and
// replicates chaos/netem operations so every endpoint's interposition
// layer converges. With the default single-process topology (or a nil
// transport) none of these paths are taken and the in-memory bus behaves
// exactly as before — the inproc transport *is* the old bus behind the
// new interface.
//
// Fault-hook parity across sockets: application messages are shaped by
// the SENDER's interposition layer (netem.go) before they reach the wire,
// exactly where the in-process bus shapes them, so Partition/Drop/Delay/
// Corrupt verdicts follow one code path on both transports. Chaos
// mutations are replicated to peer endpoints as KindChaos frames; until a
// replicated operation arrives (one socket flight, ~100 µs on loopback)
// the peers' shaping state trails the originator's — a real-network
// analogue of the partial-view staleness Loki's analysis already treats
// as fundamental.

func init() {
	// The default corruption envelope must survive the wire.
	gob.Register(simnet.Corrupted{})
}

// SetPlacement records which host each nickname is expected to run on —
// the node file's placement, used to route frames for nodes that live in
// another process. The central daemon installs it at experiment start;
// cluster runners install the full study placement up front.
func (r *Runtime) SetPlacement(placement map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placement = make(map[string]string, len(placement))
	for nick, host := range placement {
		r.placement[nick] = host
	}
	r.remoteNicks, r.remoteNicksOK = nil, false
}

// AddPlacement merges node-file entries into the placement map.
func (r *Runtime) AddPlacement(entries []spec.NodeEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range entries {
		if e.Host != "" {
			r.placement[e.Nickname] = e.Host
		}
	}
	r.remoteNicks, r.remoteNicksOK = nil, false
}

// Transport returns the runtime's transport endpoint (nil when the
// runtime is purely in-memory).
func (r *Runtime) Transport() transport.Transport { return r.cfg.Transport }

// SetTransportHook installs the receiver for transport frames the runtime
// itself does not consume (cluster-protocol control and clock-sync
// frames). The hook runs on the transport's read goroutine.
func (r *Runtime) SetTransportHook(hook func(m transport.Message)) {
	r.mu.Lock()
	r.transportHook = hook
	r.mu.Unlock()
}

// remoteHostFor resolves the placement host of a nickname that is not
// running locally, returning it only when the transport owns it remotely.
func (r *Runtime) remoteHostFor(nick string) (string, bool) {
	tr := r.cfg.Transport
	if tr == nil {
		return "", false
	}
	r.mu.Lock()
	host, ok := r.placement[nick]
	r.mu.Unlock()
	if !ok || tr.Topology().IsLocal(host) {
		return "", false
	}
	return host, true
}

// remoteNicknames returns the registered nicknames placed on hosts owned
// by other endpoints, sorted — broadcast order must not depend on map
// iteration, or same-seed runs would interleave remote deliveries
// differently. The list is cached (broadcasts sit on the apps' heartbeat
// paths) and recomputed only when the placement changes.
func (r *Runtime) remoteNicknames() []string {
	tr := r.cfg.Transport
	if tr == nil {
		return nil
	}
	r.mu.Lock()
	if r.remoteNicksOK {
		out := r.remoteNicks
		r.mu.Unlock()
		return out
	}
	topo := tr.Topology()
	var out []string
	for nick, host := range r.placement {
		if !topo.IsLocal(host) {
			out = append(out, nick)
		}
	}
	sort.Strings(out)
	r.remoteNicks, r.remoteNicksOK = out, true
	r.mu.Unlock()
	return out
}

// StartTransport installs the runtime as the configured transport's
// frame handler and starts it (binding sockets if the transport was not
// pre-bound). Callers that set Config.Transport must call this once
// before routing traffic; errors (an occupied port, a bad address) are
// ordinary operational failures, not panics.
func (r *Runtime) StartTransport() error {
	if r.cfg.Transport == nil {
		return nil
	}
	return r.cfg.Transport.Start(r.handleTransportMessage)
}

// handleTransportMessage dispatches one inbound frame. It runs on the
// transport's read goroutine.
func (r *Runtime) handleTransportMessage(m transport.Message) {
	if tr := r.trace.Load(); tr != nil {
		tr.Event(r.clk.Now(), obs.CatTransport, "recv "+transport.KindName(m.Kind), m.From+"->"+m.To)
	}
	switch m.Kind {
	case transport.KindNote:
		r.mu.Lock()
		target, live := r.nodes[m.To]
		r.mu.Unlock()
		if !live {
			r.cfg.Logf("core: dropping remote notification %s->%s (%s): target not executing", m.From, m.To, m.State)
			return
		}
		// Deliver on a fresh goroutine, exactly like the in-process
		// route(): remoteNotify runs the fault parser and possibly a
		// blocking application InjectFault callback, which must not
		// stall the transport's read loop (sync pings and every other
		// inbound frame ride on it). Untracked by design: socket
		// transports only run in cluster mode, which Open rejects under
		// virtual time, so quiescence tracking never sees this path.
		//lint:allow untrackedgo socket-only path, never runs under clock.Virtual
		go target.remoteNotify(stateNote{From: m.From, State: m.State})
	case transport.KindApp:
		r.mu.Lock()
		target, live := r.nodes[m.To]
		r.mu.Unlock()
		if !live {
			r.cfg.Logf("core: dropping remote app message %s->%s: target not executing", m.From, m.To)
			return
		}
		payload, err := decodeAppPayload(m.Payload)
		if err != nil {
			r.cfg.Logf("core: dropping undecodable app message %s->%s: %v", m.From, m.To, err)
			return
		}
		target.handle.deliver(AppMessage{From: m.From, Payload: payload}, m.From)
	case transport.KindChaos:
		op, err := decodeChaosOp(m.Payload)
		if err != nil {
			r.cfg.Logf("core: dropping undecodable chaos op: %v", err)
			return
		}
		r.applyChaosOp(op)
	default:
		r.mu.Lock()
		hook := r.transportHook
		r.mu.Unlock()
		if hook != nil {
			hook(m)
		}
	}
}

// sendRemoteNote routes a state notification to the endpoint owning host.
func (r *Runtime) sendRemoteNote(host string, note stateNote, to string) {
	m := transport.Message{
		Kind:   transport.KindNote,
		From:   note.From,
		To:     to,
		ToHost: host,
		State:  note.State,
	}
	if tr := r.trace.Load(); tr != nil {
		tr.Event(r.clk.Now(), obs.CatTransport, "send note", note.From+"->"+to)
	}
	if err := r.cfg.Transport.SendHost(host, m); err != nil {
		r.cfg.Logf("core: remote notification %s->%s: %v", note.From, to, err)
	}
}

// sendRemoteApp ships an application-bus message to the endpoint owning
// toHost. The payload was already shaped by the local interposition layer.
func (r *Runtime) sendRemoteApp(fromNick, fromHost, to, toHost string, payload interface{}) {
	body, err := encodeAppPayload(payload)
	if err != nil {
		r.cfg.Logf("core: app message %s->%s not encodable for transport: %v", fromNick, to, err)
		return
	}
	m := transport.Message{
		Kind:     transport.KindApp,
		From:     fromNick,
		FromHost: fromHost,
		To:       to,
		ToHost:   toHost,
		Payload:  body,
	}
	if err := r.cfg.Transport.SendHost(toHost, m); err != nil {
		r.cfg.Logf("core: remote app message %s->%s: %v", fromNick, to, err)
	}
}

// appPayload is the gob envelope of an application-bus payload. Concrete
// payload types must be gob-registered by the application (the built-in
// apps do so in their init functions).
type appPayload struct{ V interface{} }

func encodeAppPayload(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(appPayload{V: v}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeAppPayload(b []byte) (interface{}, error) {
	var env appPayload
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, err
	}
	return env.V, nil
}

// chaosOp is one replicated interposition-layer mutation. Filter-carrying
// ops describe the built-in filters by value; custom Filter
// implementations cannot cross the wire and stay endpoint-local (the
// installer's Logf warns).
type chaosOp struct {
	Op string // partition, heal, healall, filter, unfilter, clockstep, crashhost, reboothost, startnode
	A  string // host / link from
	B  string // host / link to
	ID string // filter id

	// Filter description for Op == "filter".
	FilterKind string // drop, delay, duplicate, corrupt
	P          float64
	Extra      int64
	Jitter     int64
	Copies     int

	// Clock step for Op == "clockstep".
	Delta int64

	// Node start for Op == "startnode".
	Nick string
}

func encodeChaosOp(op chaosOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(op); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeChaosOp(b []byte) (chaosOp, error) {
	var op chaosOp
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&op)
	return op, err
}

// wireFilter maps a built-in simnet filter to its wire description.
func wireFilter(f simnet.Filter) (kind string, p float64, extra, jitter int64, copies int, ok bool) {
	switch ft := f.(type) {
	case simnet.DropFilter:
		return "drop", ft.P, 0, 0, 0, true
	case simnet.DelayFilter:
		return "delay", 0, int64(ft.Extra), int64(ft.Jitter), 0, true
	case simnet.DuplicateFilter:
		return "duplicate", ft.P, 0, 0, ft.Copies, true
	case simnet.CorruptFilter:
		if ft.Corrupt != nil {
			return "", 0, 0, 0, 0, false // custom corruptors cannot cross the wire
		}
		return "corrupt", ft.P, 0, 0, 0, true
	}
	return "", 0, 0, 0, 0, false
}

// filterFromWire rebuilds a built-in filter from its wire description.
func filterFromWire(op chaosOp) (simnet.Filter, error) {
	switch op.FilterKind {
	case "drop":
		return simnet.DropFilter{P: op.P}, nil
	case "delay":
		return simnet.DelayFilter{Extra: vclock.Ticks(op.Extra), Jitter: vclock.Ticks(op.Jitter)}, nil
	case "duplicate":
		return simnet.DuplicateFilter{P: op.P, Copies: op.Copies}, nil
	case "corrupt":
		return simnet.CorruptFilter{P: op.P}, nil
	}
	return nil, fmt.Errorf("core: unknown wire filter kind %q", op.FilterKind)
}

// broadcastChaos replicates one interposition mutation to every peer
// endpoint. A no-op without a transport or without peers.
func (r *Runtime) broadcastChaos(op chaosOp) {
	tr := r.cfg.Transport
	if tr == nil || len(tr.Topology().PeerNames()) == 0 {
		return
	}
	body, err := encodeChaosOp(op)
	if err != nil {
		r.cfg.Logf("core: chaos op %q not encodable: %v", op.Op, err)
		return
	}
	if err := tr.Broadcast(transport.Message{Kind: transport.KindChaos, Payload: body}); err != nil {
		r.cfg.Logf("core: replicating chaos op %q: %v", op.Op, err)
	}
}

// forwardChaosToOwner sends one mutation to the endpoint owning host,
// used for host-targeted operations (clockstep, host crash/reboot, node
// start) whose target lives in another process.
func (r *Runtime) forwardChaosToOwner(host string, op chaosOp) error {
	tr := r.cfg.Transport
	if tr == nil {
		return fmt.Errorf("core: unknown host %q", host)
	}
	body, err := encodeChaosOp(op)
	if err != nil {
		return err
	}
	return tr.SendHost(host, transport.Message{Kind: transport.KindChaos, Payload: body, ToHost: host})
}

// hostIsRemote reports whether host is owned by another endpoint.
func (r *Runtime) hostIsRemote(host string) bool {
	tr := r.cfg.Transport
	return tr != nil && !tr.Topology().IsLocal(host)
}

// applyChaosOp performs a replicated mutation locally, without
// re-broadcasting. Host-targeted ops whose host is NOT local here are
// refused rather than re-forwarded: two endpoints with disagreeing
// ownership tables must produce a diagnostic, not an unbounded frame
// loop bouncing the op between them.
func (r *Runtime) applyChaosOp(op chaosOp) {
	hostIsHere := func(host string) bool {
		if r.HostClock(host) != nil {
			return true
		}
		r.cfg.Logf("core: replicated %s op targets host %q, which is not local here (ownership tables disagree?)", op.Op, host)
		return false
	}
	switch op.Op {
	case "partition":
		r.partitionHostsLocal(op.A, op.B)
	case "heal":
		r.healHostsLocal(op.A, op.B)
	case "healall":
		r.healAllLocal()
	case "filter":
		f, err := filterFromWire(op)
		if err != nil {
			r.cfg.Logf("core: %v", err)
			return
		}
		r.installLinkFilterLocal(simnet.Link{From: op.A, To: op.B}, op.ID, f)
	case "unfilter":
		r.removeLinkFilterLocal(simnet.Link{From: op.A, To: op.B}, op.ID)
	case "clockstep":
		if hostIsHere(op.A) {
			r.HostClock(op.A).Step(vclock.Ticks(op.Delta))
		}
	case "crashhost":
		if hostIsHere(op.A) {
			if err := r.CrashHost(op.A); err != nil {
				r.cfg.Logf("core: replicated crashhost: %v", err)
			}
		}
	case "reboothost":
		if hostIsHere(op.A) {
			if err := r.RebootHost(op.A); err != nil {
				r.cfg.Logf("core: replicated reboothost: %v", err)
			}
		}
	case "startnode":
		if hostIsHere(op.A) {
			if _, err := r.StartNode(op.Nick, op.A); err != nil {
				r.cfg.Logf("core: replicated startnode %s on %s: %v", op.Nick, op.A, err)
			}
		}
	default:
		r.cfg.Logf("core: unknown chaos op %q", op.Op)
	}
}
