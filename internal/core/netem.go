package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultexpr"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// This file is the live-runtime half of the link-interposition layer: the
// application bus (appbus.go) consults per-host-pair partitions and filter
// chains at send time, reusing simnet's Filter/Fate vocabulary so the chaos
// action library (internal/chaos) drives both testbeds with one set of
// primitives. Only the application bus is shaped — the Loki notification
// LAN stays clean, as the thesis prescribes (§2.4: the runtime "can use a
// LAN separate from the one used by the system").
//
// It also carries the fault-action hook: fault specification entries that
// name a built-in action (faultexpr.Spec.Action) are dispatched here
// instead of through the application's InjectFault callback.

// netem is the runtime's traffic-shaping state. It has its own lock:
// shaping runs on application goroutines and must not contend with the
// runtime's node table. The filter-chain machinery itself is simnet's
// FilterSet, shared with the DES testbed so the semantics cannot diverge.
type netem struct {
	mu         sync.Mutex
	seed       int64
	rng        *rand.Rand
	partitions map[[2]string]bool
	filters    simnet.FilterSet
	epoch      uint64

	// shaping is the no-chaos fast path: while zero, Sends skip the lock
	// entirely. Set whenever a partition or filter is installed; cleared
	// only on reset (removals leave it set — conservative and cheap).
	shaping atomic.Int32

	// expMu serializes experiment-scoped timer bodies (ExpAfterFunc)
	// against SealExperiment/ResetExperiment: a timer body runs entirely
	// under the read side, the epoch bump takes the write side, so a
	// stale timer can never straddle a seal or reset. Lock order: expMu
	// before mu and before the runtime's mu.
	expMu sync.RWMutex
}

func newNetem(seed int64) *netem {
	return &netem{
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		partitions: make(map[[2]string]bool),
	}
}

// reset clears all shaping state and reseeds the randomness, so every
// experiment of a study faces an identical, freshly-seeded network.
func (ne *netem) reset() {
	ne.expMu.Lock()
	ne.mu.Lock()
	ne.partitions = make(map[[2]string]bool)
	ne.filters.Clear()
	ne.rng = rand.New(rand.NewSource(ne.seed))
	ne.epoch++
	ne.shaping.Store(0)
	ne.mu.Unlock()
	ne.expMu.Unlock()
}

// bumpEpoch voids pending experiment-scoped timers without clearing
// shaping state (SealExperiment's half of a reset). Taking the write side
// of expMu waits out any timer body that already passed its epoch check.
func (ne *netem) bumpEpoch() {
	ne.expMu.Lock()
	ne.mu.Lock()
	ne.epoch++
	ne.mu.Unlock()
	ne.expMu.Unlock()
}

// SeedNetem reseeds the application-bus traffic shaping randomness (drop
// probabilities and the like). Takes effect from the next experiment reset.
func (r *Runtime) SeedNetem(seed int64) {
	r.netem.mu.Lock()
	r.netem.seed = seed
	r.netem.rng = rand.New(rand.NewSource(seed))
	r.netem.mu.Unlock()
}

// Epoch returns the experiment epoch, incremented on every
// ResetExperiment. Deferred chaos work captures it to avoid leaking into
// the next experiment.
func (r *Runtime) Epoch() uint64 {
	r.netem.mu.Lock()
	defer r.netem.mu.Unlock()
	return r.netem.epoch
}

// ExpAfterFunc schedules fn after d, scoped to the current experiment: if
// the runtime is sealed, reset, or shut down before the timer fires, fn is
// skipped. Chaos actions use this for auto-revert (heal after 50 ms,
// restart after a crash) without straddling experiment boundaries. The
// body runs under the read side of the seal/reset lock, so the epoch check
// and fn are atomic with respect to SealExperiment and ResetExperiment — a
// stale timer cannot start nodes into the next experiment.
func (r *Runtime) ExpAfterFunc(d time.Duration, fn func()) {
	ne := r.netem
	epoch := r.Epoch()
	r.clk.AfterFunc(d, func() {
		ne.expMu.RLock()
		defer ne.expMu.RUnlock()
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped || r.Epoch() != epoch {
			return
		}
		fn()
	})
}

// PartitionHosts blocks application-bus traffic between hosts a and b in
// both directions. Notifications still flow: Loki's control LAN is
// separate from the system under study's. With a multi-endpoint
// transport the mutation is replicated to every peer process, so traffic
// originating anywhere on the testbed sees the same partition.
func (r *Runtime) PartitionHosts(a, b string) {
	if a == b {
		return
	}
	r.partitionHostsLocal(a, b)
	r.broadcastChaos(chaosOp{Op: "partition", A: a, B: b})
}

func (r *Runtime) partitionHostsLocal(a, b string) {
	if a == b {
		return
	}
	r.netem.mu.Lock()
	r.netem.partitions[hostPair(a, b)] = true
	r.netem.shaping.Store(1)
	r.netem.mu.Unlock()
}

// HealHosts removes the partition between a and b (replicated to peers).
func (r *Runtime) HealHosts(a, b string) {
	r.healHostsLocal(a, b)
	r.broadcastChaos(chaosOp{Op: "heal", A: a, B: b})
}

func (r *Runtime) healHostsLocal(a, b string) {
	r.netem.mu.Lock()
	delete(r.netem.partitions, hostPair(a, b))
	r.netem.mu.Unlock()
}

// HealAllPartitions removes every partition (replicated to peers).
func (r *Runtime) HealAllPartitions() {
	r.healAllLocal()
	r.broadcastChaos(chaosOp{Op: "healall"})
}

func (r *Runtime) healAllLocal() {
	r.netem.mu.Lock()
	r.netem.partitions = make(map[[2]string]bool)
	r.netem.mu.Unlock()
}

// HostsPartitioned reports whether app-bus traffic between a and b is
// blocked.
func (r *Runtime) HostsPartitioned(a, b string) bool {
	r.netem.mu.Lock()
	defer r.netem.mu.Unlock()
	return r.netem.partitions[hostPair(a, b)]
}

func hostPair(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// InstallLinkFilter interposes f on application-bus traffic over the
// directed host link (simnet.Wildcard matches any host). Installing under
// an existing (link, id) replaces that filter in place. Built-in filters
// (Drop/Delay/Duplicate/Corrupt with the default envelope) are replicated
// to peer endpoints; a custom Filter implementation cannot cross the wire
// and shapes only traffic originating in this process.
func (r *Runtime) InstallLinkFilter(link simnet.Link, id string, f simnet.Filter) {
	r.installLinkFilterLocal(link, id, f)
	if kind, p, extra, jitter, copies, ok := wireFilter(f); ok {
		r.broadcastChaos(chaosOp{
			Op: "filter", A: link.From, B: link.To, ID: id,
			FilterKind: kind, P: p, Extra: extra, Jitter: jitter, Copies: copies,
		})
	} else if r.hasPeers() {
		r.cfg.Logf("core: link filter %q is not a built-in; peer endpoints will not shape with it", id)
	}
}

func (r *Runtime) installLinkFilterLocal(link simnet.Link, id string, f simnet.Filter) {
	ne := r.netem
	ne.mu.Lock()
	defer ne.mu.Unlock()
	ne.filters.Install(link, id, f)
	ne.shaping.Store(1)
}

// RemoveLinkFilter removes the filter installed under (link, id),
// reporting whether one was present locally (replicated to peers).
func (r *Runtime) RemoveLinkFilter(link simnet.Link, id string) bool {
	ok := r.removeLinkFilterLocal(link, id)
	r.broadcastChaos(chaosOp{Op: "unfilter", A: link.From, B: link.To, ID: id})
	return ok
}

func (r *Runtime) removeLinkFilterLocal(link simnet.Link, id string) bool {
	ne := r.netem
	ne.mu.Lock()
	defer ne.mu.Unlock()
	return ne.filters.Remove(link, id)
}

// hasPeers reports whether the runtime's transport reaches other
// endpoints.
func (r *Runtime) hasPeers() bool {
	tr := r.cfg.Transport
	return tr != nil && len(tr.Topology().PeerNames()) > 0
}

// shapeAppMessage runs the interposition for one app-bus message and
// reports its fate. blocked is true for partition losses (fate is then
// meaningless). While no chaos is configured the atomic fast path skips
// the lock entirely, so unshaped campaigns pay nothing on the send path.
func (r *Runtime) shapeAppMessage(fromHost, toHost string, payload interface{}) (fate simnet.Fate, blocked bool) {
	ne := r.netem
	if ne.shaping.Load() == 0 {
		return simnet.Fate{}, false
	}
	ne.mu.Lock()
	defer ne.mu.Unlock()
	if fromHost != toHost && ne.partitions[hostPair(fromHost, toHost)] {
		return simnet.Fate{}, true
	}
	return ne.filters.Consult(fromHost, toHost, payload, ne.rng), false
}

// NodesOnHost returns the nicknames of live nodes currently on the named
// host, sorted — what a host crash would take down.
func (r *Runtime) NodesOnHost(host string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for nick, n := range r.nodes {
		if n.Host() == host {
			out = append(out, nick)
		}
	}
	sort.Strings(out)
	return out
}

// StepHostClock shifts the named host's clock by delta — the clock
// misbehaviour fault. The step is visible to every timestamp taken on that
// host from now on, violating the affine clock model the off-line
// synchronization assumes. A step aimed at a host owned by another
// endpoint is forwarded there.
func (r *Runtime) StepHostClock(host string, delta vclock.Ticks) error {
	c := r.HostClock(host)
	if c == nil {
		if r.hostIsRemote(host) {
			return r.forwardChaosToOwner(host, chaosOp{Op: "clockstep", A: host, Delta: int64(delta)})
		}
		return fmt.Errorf("core: unknown host %q", host)
	}
	c.Step(delta)
	return nil
}

// SetFaultActionHook installs the dispatcher for fault specification
// entries that name a built-in action (Spec.Action != nil). The chaos
// engine registers itself here; without a hook, action faults fall back to
// the application's InjectFault callback.
func (r *Runtime) SetFaultActionHook(hook func(n *Node, f faultexpr.Spec)) {
	r.mu.Lock()
	r.actionHook = hook
	r.mu.Unlock()
}

func (r *Runtime) faultActionHook() func(n *Node, f faultexpr.Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.actionHook
}
