package measure

import (
	"fmt"
	"math"
)

// CampaignKind labels the three §4.4 campaign measure types.
type CampaignKind int

// Campaign measure types.
const (
	SimpleSamplingKind CampaignKind = iota + 1
	StratifiedWeightedKind
	StratifiedUserKind
)

// String implements fmt.Stringer.
func (k CampaignKind) String() string {
	switch k {
	case SimpleSamplingKind:
		return "simple sampling"
	case StratifiedWeightedKind:
		return "stratified weighted"
	case StratifiedUserKind:
		return "stratified user"
	default:
		return fmt.Sprintf("CampaignKind(%d)", int(k))
	}
}

// CampaignResult is the outcome of a campaign measure estimation.
type CampaignResult struct {
	Kind CampaignKind
	// Moments characterizes the campaign random variable. For stratified
	// user measures only the mean is meaningful (§4.4.3); the thesis
	// warns the value "may have no statistical meaning".
	Moments Moments
	// PerStudy holds each study's own sample moments (stratified kinds).
	PerStudy []Moments
}

// Mean is the headline estimate.
func (r CampaignResult) Mean() float64 { return r.Moments.M1 }

// SimpleSampling pools the final observation values of all studies into a
// single sample — "instances of the same random variable" (§4.4.1) — and
// computes its moments.
func SimpleSampling(studies ...[]float64) CampaignResult {
	var all []float64
	for _, s := range studies {
		all = append(all, s...)
	}
	return CampaignResult{Kind: SimpleSamplingKind, Moments: ComputeMoments(all)}
}

// StratifiedWeighted treats each study as its own random variable and
// combines the per-study moments with normalized weights (§4.4.2):
// the mean is sum p_i * m1_i and, under the thesis's cross-study
// independence assumption, central moments combine as mu_k = sum p_i *
// mu_k,i. Weights must be non-negative with a positive sum; they are
// normalized internally (the thesis's p_i are "normalized weights").
func StratifiedWeighted(studies [][]float64, weights []float64) (CampaignResult, error) {
	if len(studies) == 0 {
		return CampaignResult{}, fmt.Errorf("measure: stratified weighted needs at least one study")
	}
	if len(weights) != len(studies) {
		return CampaignResult{}, fmt.Errorf("measure: %d weights for %d studies", len(weights), len(studies))
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return CampaignResult{}, fmt.Errorf("measure: negative weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return CampaignResult{}, fmt.Errorf("measure: weights sum to zero")
	}

	res := CampaignResult{Kind: StratifiedWeightedKind}
	var combined Moments
	for i, s := range studies {
		mi := ComputeMoments(s)
		res.PerStudy = append(res.PerStudy, mi)
		p := weights[i] / sum
		combined.N += mi.N
		combined.M1 += p * mi.M1
		combined.Mu2 += p * mi.Mu2
		combined.Mu3 += p * mi.Mu3
		combined.Mu4 += p * mi.Mu4
	}
	// Back-fill non-central moments from the combined central ones so the
	// Moments value is internally consistent.
	m1 := combined.M1
	combined.M2 = combined.Mu2 + m1*m1
	combined.M3 = combined.Mu3 + 3*combined.M2*m1 - 2*m1*m1*m1
	combined.M4 = combined.Mu4 + 4*combined.M3*m1 - 6*combined.M2*m1*m1 + 3*m1*m1*m1*m1
	if combined.Mu2 > 0 {
		combined.Beta1 = combined.Mu3 * combined.Mu3 / (combined.Mu2 * combined.Mu2 * combined.Mu2)
		combined.Beta2 = combined.Mu4 / (combined.Mu2 * combined.Mu2)
	}
	res.Moments = combined
	return res, nil
}

// StratifiedUser combines studies through an arbitrary user function
// applied to the per-study means (§4.4.3). Loki returns only this single
// campaign value: the moments of an arbitrary combination are not
// computable, and the thesis cautions the result "may have no statistical
// meaning".
func StratifiedUser(studies [][]float64, fn func(studyMeans []float64) float64) (CampaignResult, error) {
	if fn == nil {
		return CampaignResult{}, fmt.Errorf("measure: stratified user needs a combine function")
	}
	if len(studies) == 0 {
		return CampaignResult{}, fmt.Errorf("measure: stratified user needs at least one study")
	}
	res := CampaignResult{Kind: StratifiedUserKind}
	means := make([]float64, len(studies))
	for i, s := range studies {
		mi := ComputeMoments(s)
		res.PerStudy = append(res.PerStudy, mi)
		means[i] = mi.M1
	}
	res.Moments = Moments{N: res.totalN(), M1: fn(means)}
	return res, nil
}

func (r CampaignResult) totalN() int {
	n := 0
	for _, m := range r.PerStudy {
		n += m.N
	}
	return n
}

// Coverage is the thesis's §5.8 worked campaign measure: the overall
// fault-tolerance coverage c = sum(w_i*c_i)/sum(w_i) given per-study
// coverages (study measure means) and fault occurrence rates as weights.
// It is a StratifiedWeighted measure provided as a named convenience.
func Coverage(coverages []float64, rates []float64) (float64, error) {
	if len(coverages) != len(rates) || len(coverages) == 0 {
		return 0, fmt.Errorf("measure: coverage needs matching non-empty coverages and rates")
	}
	studies := make([][]float64, len(coverages))
	for i, c := range coverages {
		studies[i] = []float64{c}
	}
	res, err := StratifiedWeighted(studies, rates)
	if err != nil {
		return 0, err
	}
	return res.Mean(), nil
}
