package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/observation"
	"repro/internal/predicate"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

func ms(v float64) vclock.Ticks { return vclock.FromMillis(v) }

// mkGlobal builds an exact-bounds global timeline from (machine, state, ms)
// rows, for driving study measures.
func mkGlobal(rows ...[3]interface{}) *analysis.Global {
	g := &analysis.Global{Reference: "h"}
	seen := map[string]bool{}
	for _, r := range rows {
		machine, state := r[0].(string), r[1].(string)
		at := ms(r[2].(float64))
		g.Events = append(g.Events, analysis.Event{
			Machine: machine, Kind: timeline.StateChange, State: state,
			Event: "e", Host: "h", Local: at,
			Ref: analysis.Interval{Lo: at, Hi: at},
		})
		if !seen[machine] {
			seen[machine] = true
			g.Machines = append(g.Machines, machine)
		}
	}
	return g
}

func TestSelectors(t *testing.T) {
	tests := []struct {
		src     string
		prev    float64
		hasPrev bool
		want    bool
	}{
		{"default", 0, false, true},
		{"default", -5, true, true},
		{"(OBS_VALUE > 0)", 1, true, true},
		{"(OBS_VALUE > 0)", 0, true, false},
		{"(OBS_VALUE > 0)", 1, false, false},
		{"(OBS_VALUE >= 2)", 2, true, true},
		{"(OBS_VALUE < 2)", 1, true, true},
		{"(OBS_VALUE <= 2)", 3, true, false},
		{"(OBS_VALUE == 2)", 2, true, true},
		{"(OBS_VALUE != 2)", 2, true, false},
		{"(2 <= OBS_VALUE <= 10)", 5, true, true},
		{"(2 <= OBS_VALUE <= 10)", 11, true, false},
		{"(2 <= OBS_VALUE <= 10)", 1, true, false},
	}
	for _, tt := range tests {
		sel, err := ParseSelector(tt.src)
		if err != nil {
			t.Errorf("ParseSelector(%q): %v", tt.src, err)
			continue
		}
		if got := sel.Select(tt.prev, tt.hasPrev); got != tt.want {
			t.Errorf("%q.Select(%v,%v) = %v, want %v", tt.src, tt.prev, tt.hasPrev, got, tt.want)
		}
	}
}

func TestSelectorParseErrors(t *testing.T) {
	for _, src := range []string{"", "(X > 0)", "(OBS_VALUE >)", "(OBS_VALUE ? 1)", "(a <= OBS_VALUE <= b)"} {
		if _, err := ParseSelector(src); err == nil {
			t.Errorf("ParseSelector(%q) succeeded", src)
		}
	}
}

func TestSelectorStrings(t *testing.T) {
	for _, src := range []string{"default", "(OBS_VALUE > 0)", "(2 <= OBS_VALUE <= 10)"} {
		sel, err := ParseSelector(src)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseSelector(sel.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", sel.String(), err)
		}
		if again.String() != sel.String() {
			t.Errorf("round trip %q -> %q", sel.String(), again.String())
		}
	}
	u := UserSelector{Fn: func(float64) bool { return true }}
	if u.String() != "user-selector" {
		t.Error("anonymous user selector name")
	}
	if !(UserSelector{Name: "x", Fn: func(v float64) bool { return v > 0 }}).Select(1, true) {
		t.Error("user selector select")
	}
}

// coverageMeasure is the §5.8 study measure for leader-error coverage:
// ((default, (black:CRASH), total_duration(T, START_EXP, END_EXP)),
//
//	((OBS_VALUE > 0), (black:RESTART_SM), total_duration(T,...) > 0 -> outcome))
//
// The thesis's second observation is a boolean over a total_duration; here
// it is a User function returning 1 when the restart state was occupied.
func coverageMeasure(t *testing.T) *StudyMeasure {
	t.Helper()
	restartObserved := observation.User{
		Name: "restarted",
		Fn: func(p predicate.PVT, env observation.Env) float64 {
			if (observation.TotalDuration{Phase: observation.TruePhase,
				Start: observation.StartExp(), End: observation.EndExp()}).Apply(p, env) > 0 {
				return 1
			}
			return 0
		},
	}
	m, err := NewStudyMeasure("coverage",
		Triple{
			Select: Default{},
			Pred:   predicate.MustParse("(black, CRASH)"),
			Obs:    observation.MustParse("total_duration(T, START_EXP, END_EXP)"),
		},
		Triple{
			Select: Cmp{Op: OpGT, Value: 0},
			Pred:   predicate.MustParse("(black, RESTART_SM)"),
			Obs:    restartObserved,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStudyMeasureCoverageScenarios(t *testing.T) {
	m := coverageMeasure(t)

	// Crash then restart: covered -> 1.
	covered := mkGlobal(
		[3]interface{}{"black", "LEAD", 10.0},
		[3]interface{}{"black", "CRASH", 20.0},
		[3]interface{}{"black", "RESTART_SM", 30.0},
		[3]interface{}{"black", "FOLLOW", 40.0},
	)
	if v, ok := m.Apply(covered); !ok || v != 1 {
		t.Errorf("covered: (%v, %v), want (1, true)", v, ok)
	}

	// Crash, never restarted: not covered -> 0.
	uncovered := mkGlobal(
		[3]interface{}{"black", "LEAD", 10.0},
		[3]interface{}{"black", "CRASH", 20.0},
		[3]interface{}{"other", "IDLE", 40.0}, // extends experiment span
	)
	if v, ok := m.Apply(uncovered); !ok || v != 0 {
		t.Errorf("uncovered: (%v, %v), want (0, true)", v, ok)
	}

	// Never crashed: filtered out by the second subset selection.
	noCrash := mkGlobal(
		[3]interface{}{"black", "LEAD", 10.0},
		[3]interface{}{"black", "FOLLOW", 20.0},
	)
	if _, ok := m.Apply(noCrash); ok {
		t.Error("experiment without a crash should be deselected")
	}
}

func TestStudyMeasureApplyAll(t *testing.T) {
	m := coverageMeasure(t)
	exps := []*analysis.Global{
		mkGlobal([3]interface{}{"black", "CRASH", 5.0}, [3]interface{}{"black", "RESTART_SM", 8.0}, [3]interface{}{"black", "FOLLOW", 9.0}),
		mkGlobal([3]interface{}{"black", "CRASH", 5.0}, [3]interface{}{"other", "IDLE", 9.0}),
		mkGlobal([3]interface{}{"black", "LEAD", 5.0}), // deselected
	}
	vals := m.ApplyAll(exps)
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 0 {
		t.Errorf("ApplyAll = %v", vals)
	}
}

func TestStudyMeasureValidation(t *testing.T) {
	if _, err := NewStudyMeasure("empty"); err == nil {
		t.Error("empty measure accepted")
	}
	if _, err := NewStudyMeasure("bad", Triple{}); err == nil {
		t.Error("nil components accepted")
	}
	notDefault := Triple{
		Select: Cmp{Op: OpGT, Value: 0},
		Pred:   predicate.MustParse("(a, B)"),
		Obs:    observation.MustParse("outcome(0)"),
	}
	if _, err := NewStudyMeasure("bad2", notDefault); err == nil {
		t.Error("non-default first selector accepted")
	}
}

func TestStudyMeasureEmptyTimeline(t *testing.T) {
	m := coverageMeasure(t)
	if _, ok := m.Apply(&analysis.Global{}); ok {
		t.Error("empty timeline selected")
	}
}

func TestStudyMeasureString(t *testing.T) {
	m := coverageMeasure(t)
	s := m.String()
	if s == "" || s[0] != '(' {
		t.Errorf("String = %q", s)
	}
}

func TestComputeMomentsKnownSample(t *testing.T) {
	// Sample {1, 2, 3, 4}: mean 2.5, mu2 1.25, mu3 0, mu4 2.5625.
	m := ComputeMoments([]float64{1, 2, 3, 4})
	if m.N != 4 || m.M1 != 2.5 {
		t.Errorf("mean: %+v", m)
	}
	if math.Abs(m.Mu2-1.25) > 1e-12 {
		t.Errorf("mu2 = %v", m.Mu2)
	}
	if math.Abs(m.Mu3) > 1e-12 {
		t.Errorf("mu3 = %v", m.Mu3)
	}
	if math.Abs(m.Mu4-2.5625) > 1e-12 {
		t.Errorf("mu4 = %v", m.Mu4)
	}
	if math.Abs(m.Beta2-m.Mu4/(1.25*1.25)) > 1e-12 {
		t.Errorf("beta2 = %v", m.Beta2)
	}
	if m.StdDev() != math.Sqrt(1.25) {
		t.Errorf("sd = %v", m.StdDev())
	}
}

func TestComputeMomentsDegenerate(t *testing.T) {
	m := ComputeMoments(nil)
	if m.N != 0 || m.M1 != 0 {
		t.Errorf("empty moments = %+v", m)
	}
	c := ComputeMoments([]float64{7, 7, 7})
	if c.Mu2 > 1e-12 || c.Beta1 != 0 || c.Skew() != 0 || c.ExcessKurtosis() != 0 {
		t.Errorf("constant sample moments = %+v", c)
	}
	p, err := c.Percentile(0.99)
	if err != nil || p != 7 {
		t.Errorf("degenerate percentile = %v, %v", p, err)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

// TestMomentsShiftInvariance: central moments are invariant under shifts.
func TestMomentsShiftInvariance(t *testing.T) {
	f := func(seed int64, shiftRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		shift := float64(shiftRaw)
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 3
			ys[i] = xs[i] + shift
		}
		a, b := ComputeMoments(xs), ComputeMoments(ys)
		// Tolerances are relative: a large shift cancels against large
		// raw moments, so the achievable agreement scales with magnitude.
		close := func(x, y, tol float64) bool {
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			return math.Abs(x-y) <= tol*scale
		}
		return close(a.Mu2, b.Mu2, 1e-8) &&
			close(a.Mu3, b.Mu3, 1e-8) &&
			close(a.Mu4, b.Mu4, 1e-8) &&
			close(a.M1+shift, b.M1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.9, 1.281552},
		{0.0001, -3.719016},
	}
	for _, tc := range cases {
		if got := normQuantile(tc.p); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("normQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileNormalSample(t *testing.T) {
	// A large normal sample's Cornish-Fisher percentiles should be close
	// to the true normal quantiles.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	m := ComputeMoments(xs)
	for _, gamma := range []float64{0.05, 0.5, 0.95, 0.99} {
		got, err := m.Percentile(gamma)
		if err != nil {
			t.Fatal(err)
		}
		want := 10 + 2*normQuantile(gamma)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("percentile(%v) = %v, want ~%v", gamma, got, want)
		}
	}
	if _, err := m.Percentile(0); err == nil {
		t.Error("percentile(0) accepted")
	}
	if _, err := m.Percentile(1); err == nil {
		t.Error("percentile(1) accepted")
	}
}

func TestPercentileSkewedSample(t *testing.T) {
	// Exponential(1): true median ln2≈0.693. Cornish-Fisher from four
	// moments is approximate; accept 10% error.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	m := ComputeMoments(xs)
	med, err := m.Percentile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-math.Ln2) > 0.1 {
		t.Errorf("exponential median = %v, want ~%v", med, math.Ln2)
	}
	if m.Skew() < 1.5 {
		t.Errorf("exponential skew = %v, want ~2", m.Skew())
	}
}

func TestSimpleSamplingPoolsStudies(t *testing.T) {
	r := SimpleSampling([]float64{1, 1}, []float64{0, 0})
	if r.Kind != SimpleSamplingKind {
		t.Error("kind")
	}
	if r.Moments.N != 4 || r.Mean() != 0.5 {
		t.Errorf("pooled = %+v", r.Moments)
	}
}

func TestStratifiedWeighted(t *testing.T) {
	studies := [][]float64{{1, 1, 1}, {0, 0, 0}, {1, 0}}
	weights := []float64{2, 1, 1}
	r, err := StratifiedWeighted(studies, weights)
	if err != nil {
		t.Fatal(err)
	}
	// mean = (2*1 + 1*0 + 1*0.5)/4 = 0.625
	if math.Abs(r.Mean()-0.625) > 1e-12 {
		t.Errorf("mean = %v", r.Mean())
	}
	if len(r.PerStudy) != 3 || r.PerStudy[2].M1 != 0.5 {
		t.Errorf("per-study = %+v", r.PerStudy)
	}
	// mu2 = p3 * 0.25 = 0.0625 (studies 1,2 have zero variance)
	if math.Abs(r.Moments.Mu2-0.0625) > 1e-12 {
		t.Errorf("mu2 = %v", r.Moments.Mu2)
	}
}

func TestStratifiedWeightedMatchesSimpleWhenProportional(t *testing.T) {
	// With weights proportional to study sizes, the stratified mean equals
	// the pooled mean.
	s1, s2 := []float64{1, 2, 3}, []float64{10, 20}
	r, err := StratifiedWeighted([][]float64{s1, s2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	pooled := SimpleSampling(s1, s2)
	if math.Abs(r.Mean()-pooled.Mean()) > 1e-12 {
		t.Errorf("stratified %v != pooled %v", r.Mean(), pooled.Mean())
	}
}

func TestStratifiedWeightedErrors(t *testing.T) {
	if _, err := StratifiedWeighted(nil, nil); err == nil {
		t.Error("empty studies accepted")
	}
	if _, err := StratifiedWeighted([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := StratifiedWeighted([][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := StratifiedWeighted([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("zero weight sum accepted")
	}
}

func TestStratifiedUser(t *testing.T) {
	studies := [][]float64{{0.9, 1.0}, {0.5, 0.5}}
	r, err := StratifiedUser(studies, func(means []float64) float64 {
		return means[0] * means[1] // arbitrary nonlinear combination
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean()-0.95*0.5) > 1e-12 {
		t.Errorf("user mean = %v", r.Mean())
	}
	if r.Kind != StratifiedUserKind || len(r.PerStudy) != 2 {
		t.Errorf("result = %+v", r)
	}
	if _, err := StratifiedUser(studies, nil); err == nil {
		t.Error("nil combiner accepted")
	}
	if _, err := StratifiedUser(nil, func([]float64) float64 { return 0 }); err == nil {
		t.Error("empty studies accepted")
	}
}

func TestCoverageFormula(t *testing.T) {
	// §5.8: c = (wb*cb + wg*cg + wy*cy) / (wb+wg+wy)
	c, err := Coverage([]float64{0.9, 0.8, 0.7}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (3*0.9 + 2*0.8 + 1*0.7) / 6
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("coverage = %v, want %v", c, want)
	}
	if _, err := Coverage([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched coverage inputs accepted")
	}
}

func TestCampaignKindString(t *testing.T) {
	if SimpleSamplingKind.String() == "" || StratifiedWeightedKind.String() == "" ||
		StratifiedUserKind.String() == "" || CampaignKind(9).String() == "" {
		t.Error("kind strings")
	}
}
