package measure

import (
	"fmt"
	"math"
)

// Moments holds the first four non-central moments of a sample and the
// derived central moments and shape coefficients (§4.4.1).
type Moments struct {
	N int
	// M1..M4 are the non-central moments (1/N)Σ x^k.
	M1, M2, M3, M4 float64
	// Mu2..Mu4 are the central moments per Eqns. 4.1–4.3.
	Mu2, Mu3, Mu4 float64
	// Beta1 and Beta2 are the skewness and kurtosis coefficients of
	// Eqns. 4.4–4.5: beta1 = mu3^2/mu2^3, beta2 = mu4/mu2^2.
	Beta1, Beta2 float64
}

// ComputeMoments computes sample moments. A sample of fewer than one value
// yields the zero Moments.
func ComputeMoments(values []float64) Moments {
	m := Moments{N: len(values)}
	if m.N == 0 {
		return m
	}
	n := float64(m.N)
	for _, v := range values {
		m.M1 += v
		m.M2 += v * v
		m.M3 += v * v * v
		m.M4 += v * v * v * v
	}
	m.M1 /= n
	m.M2 /= n
	m.M3 /= n
	m.M4 /= n
	m.deriveCentral()
	return m
}

// deriveCentral fills central moments and shape coefficients from the
// non-central moments, using the thesis's Eqns. 4.1–4.5.
func (m *Moments) deriveCentral() {
	m1 := m.M1
	m.Mu2 = m.M2 - m1*m1
	m.Mu3 = m.M3 - 3*m.M2*m1 + 2*m1*m1*m1
	m.Mu4 = m.M4 - 4*m.M3*m1 + 6*m.M2*m1*m1 - 3*m1*m1*m1*m1
	if m.Mu2 > 0 {
		m.Beta1 = (m.Mu3 * m.Mu3) / (m.Mu2 * m.Mu2 * m.Mu2)
		m.Beta2 = m.Mu4 / (m.Mu2 * m.Mu2)
	} else {
		m.Beta1, m.Beta2 = 0, 0
	}
}

// Mean returns the sample mean.
func (m Moments) Mean() float64 { return m.M1 }

// Variance returns the (population) variance mu2.
func (m Moments) Variance() float64 { return m.Mu2 }

// StdDev returns sqrt(mu2).
func (m Moments) StdDev() float64 {
	if m.Mu2 <= 0 {
		return 0
	}
	return math.Sqrt(m.Mu2)
}

// Skew returns the signed skewness gamma1 = mu3/mu2^(3/2).
func (m Moments) Skew() float64 {
	sd := m.StdDev()
	if sd == 0 {
		return 0
	}
	return m.Mu3 / (sd * sd * sd)
}

// ExcessKurtosis returns gamma2 = beta2 - 3.
func (m Moments) ExcessKurtosis() float64 {
	if m.Mu2 <= 0 {
		return 0
	}
	return m.Beta2 - 3
}

// String implements fmt.Stringer.
func (m Moments) String() string {
	return fmt.Sprintf("Moments{n=%d mean=%.6g var=%.6g beta1=%.4g beta2=%.4g}",
		m.N, m.M1, m.Mu2, m.Beta1, m.Beta2)
}

// Percentile approximates the gamma-percentile of the distribution
// characterized by these moments.
//
// The thesis uses the Bowman–Shenton 19-point rational-fraction
// approximation for Pearson-system percentiles [14,15]; its coefficient
// tables are not reproduced in the thesis, so this reproduction substitutes
// a Cornish–Fisher expansion — the standard percentile approximation from
// the same inputs (mean, variance, skewness, kurtosis). Both methods serve
// the same role: percentiles of a distribution known only through its first
// four moments. gamma must lie in (0, 1).
func (m Moments) Percentile(gamma float64) (float64, error) {
	if gamma <= 0 || gamma >= 1 {
		return 0, fmt.Errorf("measure: percentile level %v outside (0,1)", gamma)
	}
	if m.Mu2 <= 0 {
		// Degenerate distribution: all mass at the mean.
		return m.M1, nil
	}
	z := normQuantile(gamma)
	g1 := m.Skew()
	g2 := m.ExcessKurtosis()
	w := z +
		(z*z-1)*g1/6 +
		(z*z*z-3*z)*g2/24 -
		(2*z*z*z-5*z)*g1*g1/36
	return m.M1 + m.StdDev()*w, nil
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, max relative error ~1.15e-9 — far below the moment
// estimation error it feeds).
func normQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
