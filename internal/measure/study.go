package measure

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/observation"
	"repro/internal/predicate"
)

// Triple is one (subset selection, predicate, observation function) stage
// of a study measure (§4.3.4).
type Triple struct {
	Select Selector
	Pred   predicate.Expr
	Obs    observation.Func
}

// String renders the triple in source syntax.
func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.Select, t.Pred, t.Obs)
}

// StudyMeasure is an ordered sequence of triples applied to every
// experiment in a study. The output for an experiment is the final
// observation function value, if the experiment survives every subset
// selection (§4.3.4).
type StudyMeasure struct {
	Name    string
	Triples []Triple
}

// NewStudyMeasure validates and builds a study measure. The first triple's
// selector must admit all experiments; the thesis expresses this by making
// it "default".
func NewStudyMeasure(name string, triples ...Triple) (*StudyMeasure, error) {
	if len(triples) == 0 {
		return nil, fmt.Errorf("measure: study measure %q needs at least one triple", name)
	}
	for i, t := range triples {
		if t.Select == nil || t.Pred == nil || t.Obs == nil {
			return nil, fmt.Errorf("measure: study measure %q triple %d has nil component", name, i)
		}
	}
	if _, ok := triples[0].Select.(Default); !ok {
		return nil, fmt.Errorf("measure: study measure %q: first triple's selection must be default (§4.3.4)", name)
	}
	return &StudyMeasure{Name: name, Triples: triples}, nil
}

// Apply evaluates the measure on one experiment's global timeline. selected
// is false when a subset selection drops the experiment, which removes it
// "from further consideration in the measure estimation process" (§4.2).
func (m *StudyMeasure) Apply(g *analysis.Global) (value float64, selected bool) {
	span, ok := g.Span()
	if !ok {
		return 0, false
	}
	env := observation.Env{StartExp: span.Lo, EndExp: span.Hi}
	var prev float64
	hasPrev := false
	for _, t := range m.Triples {
		if !t.Select.Select(prev, hasPrev) {
			return 0, false
		}
		pvt := predicate.Evaluate(t.Pred, g)
		prev = t.Obs.Apply(pvt, env)
		hasPrev = true
	}
	return prev, true
}

// ApplyAll evaluates the measure on every experiment of a study and returns
// the final observation values of the surviving experiments.
func (m *StudyMeasure) ApplyAll(experiments []*analysis.Global) []float64 {
	var out []float64
	for _, g := range experiments {
		if v, ok := m.Apply(g); ok {
			out = append(out, v)
		}
	}
	return out
}

// String renders the full measure as an ordered triple sequence.
func (m *StudyMeasure) String() string {
	parts := make([]string, len(m.Triples))
	for i, t := range m.Triples {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
