// Package measure implements Loki's measure language and statistical
// estimation (thesis Chapter 4): study-level measures as ordered sequences
// of (subset selection, predicate, observation function) triples, and
// campaign-level measures — simple sampling, stratified weighted, and
// stratified user — with moment-based statistics and percentile
// approximation.
package measure

import (
	"fmt"
	"strconv"
	"strings"
)

// Selector decides whether an experiment stays in the measure pipeline,
// based on the observation function value of the previous triple (§4.3.3).
type Selector interface {
	// Select reports whether an experiment with previous observation value
	// prev passes. hasPrev is false for the first triple, whose selection
	// must admit all experiments (§4.3.4).
	Select(prev float64, hasPrev bool) bool
	// String renders the selector in source syntax.
	String() string
}

// Default selects every experiment — the mandatory first-triple selector
// (the thesis's "default" in §5.8).
type Default struct{}

// Select implements Selector.
func (Default) Select(float64, bool) bool { return true }

// String implements Selector.
func (Default) String() string { return "default" }

// CmpOp is a comparison operator in a subset selection.
type CmpOp string

// Comparison operators.
const (
	OpGT CmpOp = ">"
	OpGE CmpOp = ">="
	OpLT CmpOp = "<"
	OpLE CmpOp = "<="
	OpEQ CmpOp = "=="
	OpNE CmpOp = "!="
)

// Cmp selects experiments whose previous observation value compares against
// Value, e.g. (OBS_VALUE > 0).
type Cmp struct {
	Op    CmpOp
	Value float64
}

// Select implements Selector.
func (c Cmp) Select(prev float64, hasPrev bool) bool {
	if !hasPrev {
		return false
	}
	switch c.Op {
	case OpGT:
		return prev > c.Value
	case OpGE:
		return prev >= c.Value
	case OpLT:
		return prev < c.Value
	case OpLE:
		return prev <= c.Value
	case OpEQ:
		return prev == c.Value
	case OpNE:
		return prev != c.Value
	default:
		return false
	}
}

// String implements Selector.
func (c Cmp) String() string { return fmt.Sprintf("(OBS_VALUE %s %g)", c.Op, c.Value) }

// Range selects experiments whose previous observation value lies in
// [Lo, Hi] — the thesis's "between 2 and 10" example (§4.3.3).
type Range struct {
	Lo, Hi float64
}

// Select implements Selector.
func (r Range) Select(prev float64, hasPrev bool) bool {
	return hasPrev && prev >= r.Lo && prev <= r.Hi
}

// String implements Selector.
func (r Range) String() string {
	return fmt.Sprintf("(%g <= OBS_VALUE <= %g)", r.Lo, r.Hi)
}

// UserSelector wraps an arbitrary Go predicate over the previous
// observation value, mirroring §4.3.3's compiled user functions.
type UserSelector struct {
	Name string
	Fn   func(prev float64) bool
}

// Select implements Selector.
func (u UserSelector) Select(prev float64, hasPrev bool) bool { return hasPrev && u.Fn(prev) }

// String implements Selector.
func (u UserSelector) String() string {
	if u.Name != "" {
		return u.Name
	}
	return "user-selector"
}

// ParseSelector parses selector source: "default", "(OBS_VALUE > 0)"-style
// comparisons, or "(a <= OBS_VALUE <= b)" ranges.
func ParseSelector(src string) (Selector, error) {
	s := strings.TrimSpace(src)
	if s == "default" {
		return Default{}, nil
	}
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	s = strings.TrimSpace(s)

	// Range form: a <= OBS_VALUE <= b
	if parts := strings.Split(s, "<="); len(parts) == 3 && strings.TrimSpace(parts[1]) == "OBS_VALUE" {
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("measure: bad range selector %q", src)
		}
		return Range{Lo: lo, Hi: hi}, nil
	}

	for _, op := range []CmpOp{OpGE, OpLE, OpEQ, OpNE, OpGT, OpLT} {
		idx := strings.Index(s, string(op))
		if idx < 0 {
			continue
		}
		lhs := strings.TrimSpace(s[:idx])
		rhs := strings.TrimSpace(s[idx+len(op):])
		if lhs != "OBS_VALUE" {
			return nil, fmt.Errorf("measure: selector %q must compare OBS_VALUE", src)
		}
		v, err := strconv.ParseFloat(rhs, 64)
		if err != nil {
			return nil, fmt.Errorf("measure: bad selector threshold %q", rhs)
		}
		return Cmp{Op: op, Value: v}, nil
	}
	return nil, fmt.Errorf("measure: cannot parse selector %q", src)
}
