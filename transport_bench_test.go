// Benchmarks for the pluggable transport subsystem: raw frame round
// trips per implementation, and full-pipeline campaign throughput on the
// in-process engine versus the clustered socket engines. See the
// "Transports" section of EXPERIMENTS.md; the JSON emitter below
// regenerates BENCH_transport.json.
//
//	go test -bench=BenchmarkTransport -benchmem
package loki_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	loki "repro"
	"repro/internal/transport"
)

// benchPair builds a connected two-endpoint loopback cluster of the
// given kind, with host h1 on peer a and h2 on peer b.
func benchPair(b *testing.B, kind string) (a, bb transport.Transport) {
	b.Helper()
	eps, err := transport.NewLoopbackCluster(kind, map[string]string{"h1": "a", "h2": "b"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps["a"], eps["b"]
}

// transportRoundTrip measures one full echo through a transport pair:
// marshal, socket (or direct call), handler dispatch, and back.
func transportRoundTrip(b *testing.B, kind string) {
	a, bb := benchPair(b, kind)
	echoed := make(chan struct{}, 1)
	if err := bb.Start(func(m transport.Message) {
		if err := bb.SendHost("h1", transport.Message{Kind: transport.KindNote, State: "pong"}); err != nil {
			panic(err)
		}
	}); err != nil {
		b.Fatal(err)
	}
	if err := a.Start(func(m transport.Message) {
		select {
		case echoed <- struct{}{}:
		default:
		}
	}); err != nil {
		b.Fatal(err)
	}
	var lost atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SendHost("h2", transport.Message{Kind: transport.KindNote, From: "black", To: "green", State: "ping"}); err != nil {
			b.Fatal(err)
		}
		select {
		case <-echoed:
		case <-time.After(time.Second):
			lost.Add(1) // a dropped datagram; count it, keep measuring
		}
	}
	b.StopTimer()
	if n := lost.Load(); n > 0 {
		b.ReportMetric(float64(n), "lost")
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	for _, kind := range []string{"inproc", "udp", "tcp"} {
		b.Run(kind, func(b *testing.B) { transportRoundTrip(b, kind) })
	}
}

// clusteredCampaign builds the bench election campaign for a transport
// kind ("" = the in-process engine with one worker, the like-for-like
// baseline: clustered studies are single-flight too).
func clusteredCampaign(experiments int, kind string, seed int64) *loki.Campaign {
	c := electionCampaignRunFor("tp", experiments, false, seed, 25*time.Millisecond)
	c.Workers = 1
	c.Sync = loki.SyncConfig{Messages: 4, Transit: 20 * time.Microsecond, Spacing: time.Millisecond}
	c.Studies[0].Timeout = 5 * time.Second
	c.Studies[0].Transport = kind
	return c
}

// BenchmarkTransportCampaign measures full-pipeline experiments/sec per
// transport: sync mini-phases (socket round trips for remote hosts),
// runtime phase (notifications and app traffic framed across endpoints),
// result streaming, and analysis.
func BenchmarkTransportCampaign(b *testing.B) {
	for _, kind := range []string{"", "udp", "tcp"} {
		name := kind
		if name == "" {
			name = "inproc"
		}
		b.Run(name, func(b *testing.B) {
			const experiments = 4
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				out, err := loki.RunCampaign(clusteredCampaign(experiments, kind, int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if n := len(out.Study("study1").Records); n != experiments {
					b.Fatalf("got %d records, want %d", n, experiments)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*experiments)/elapsed, "experiments/sec")
			}
		})
	}
}

// TestEmitTransportBenchJSON regenerates BENCH_transport.json, the
// transport comparison record referenced by EXPERIMENTS.md. Skipped in
// -short mode (CI smoke runs stay fast).
func TestEmitTransportBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench JSON emission in short mode")
	}
	type rttRow struct {
		Transport  string  `json:"transport"`
		Rounds     int     `json:"rounds"`
		RTTMicros  float64 `json:"round_trip_us"`
		ElapsedSec float64 `json:"elapsed_sec"`
	}
	type campRow struct {
		Transport      string  `json:"transport"`
		Experiments    int     `json:"experiments"`
		ElapsedSec     float64 `json:"elapsed_sec"`
		ExperimentsSec float64 `json:"experiments_per_sec"`
		Accepted       int     `json:"accepted"`
	}
	type doc struct {
		Name      string    `json:"name"`
		RoundTrip []rttRow  `json:"round_trip"`
		Campaign  []campRow `json:"campaign"`
	}
	out := doc{Name: "transport-comparison"}

	for _, kind := range []string{"inproc", "udp", "tcp"} {
		const rounds = 2000
		eps, err := transport.NewLoopbackCluster(kind, map[string]string{"h1": "a", "h2": "b"})
		if err != nil {
			t.Fatal(err)
		}
		a, bb := eps["a"], eps["b"]
		echoed := make(chan struct{}, 1)
		if err := bb.Start(func(m transport.Message) {
			bb.SendHost("h1", transport.Message{Kind: transport.KindNote, State: "pong"})
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Start(func(m transport.Message) {
			select {
			case echoed <- struct{}{}:
			default:
			}
		}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := a.SendHost("h2", transport.Message{Kind: transport.KindNote, State: "ping"}); err != nil {
				t.Fatal(err)
			}
			select {
			case <-echoed:
			case <-time.After(time.Second):
			}
		}
		elapsed := time.Since(start)
		for _, ep := range eps {
			ep.Close()
		}
		out.RoundTrip = append(out.RoundTrip, rttRow{
			Transport:  kind,
			Rounds:     rounds,
			RTTMicros:  float64(elapsed.Microseconds()) / rounds,
			ElapsedSec: elapsed.Seconds(),
		})
		t.Logf("%s round trip: %.1f µs", kind, float64(elapsed.Microseconds())/rounds)
	}

	const experiments = 8
	for _, kind := range []string{"", "udp", "tcp"} {
		name := kind
		if name == "" {
			name = "inproc"
		}
		start := time.Now()
		res, err := loki.RunCampaign(clusteredCampaign(experiments, kind, 42))
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		accepted := 0
		for _, r := range res.Study("study1").Records {
			if r.Accepted {
				accepted++
			}
		}
		out.Campaign = append(out.Campaign, campRow{
			Transport:      name,
			Experiments:    experiments,
			ElapsedSec:     elapsed,
			ExperimentsSec: float64(experiments) / elapsed,
			Accepted:       accepted,
		})
		t.Logf("%s campaign: %.2f experiments/sec (%d/%d accepted)", name, float64(experiments)/elapsed, accepted, experiments)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_transport.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_transport.json")
}
