package loki

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/report"
)

// Session-level observability: the options below configure one obs.Sink
// that every engine the session runs — in-process pool, matrix, cluster
// member — shares. With no observability option the sink stays nil and the
// engines' instrumentation sites cost a single nil check (zero
// allocations on the notification hot path).

// ProgressEvent is one live campaign progress notification, delivered to
// WithObserver / Session.Watch callbacks as experiments complete.
type ProgressEvent = obs.Event

// Progress event kinds.
const (
	EventStudyStart = obs.EventStudyStart
	EventExperiment = obs.EventExperiment
	EventStudyDone  = obs.EventStudyDone
)

// MetricsRegistry is the session's metric registry: Prometheus text via
// WriteProm/Handler, deterministic JSON via Snapshot/WriteJSON.
type MetricsRegistry = obs.Registry

// LogLevel is the structured logger's severity threshold.
type LogLevel = obs.Level

// Log levels, most to least verbose.
const (
	LogDebug = obs.Debug
	LogInfo  = obs.Info
	LogWarn  = obs.Warn
	LogError = obs.Error
)

// sink lazily materializes the session's observability sink on the opened
// campaign copy (engines see it through Campaign.Obs).
func (s *Session) sink() *obs.Sink {
	if s.c.Obs == nil {
		s.c.Obs = &obs.Sink{}
	}
	return s.c.Obs
}

// WithObserver subscribes fn to the session's live progress events —
// study start/done and every completed experiment, cumulative counts
// included — for the session's lifetime. Callbacks run on the engines'
// analysis goroutines and must return quickly. Use Session.Watch for a
// cancellable subscription.
func WithObserver(fn func(ProgressEvent)) Option {
	return func(s *Session) error {
		if fn == nil {
			return fmt.Errorf("loki: WithObserver(nil)")
		}
		s.sink().Watch(fn)
		return nil
	}
}

// WithMetrics enables the session's metric registry: experiment verdicts,
// per-phase latencies, transport traffic, journal fsync latency, worker
// utilization. Read it through Session.Metrics; with WithArtifacts, Run
// also snapshots it to DIR/metrics.json.
func WithMetrics() Option {
	return func(s *Session) error {
		sk := s.sink()
		if sk.Metrics == nil {
			sk.Metrics = obs.NewRegistry()
		}
		return nil
	}
}

// WithTracing collects one structured trace per experiment — phase spans
// and chaos/transport/probe point events, timestamped by the campaign's
// injected clock so virtual-time traces are byte-reproducible — under
// dir/<study-or-point>/expNNN.trace.jsonl. An empty dir derives
// ARTIFACTS/traces from WithArtifacts (in either option order).
func WithTracing(dir string) Option {
	return func(s *Session) error {
		s.traceReq = true
		s.traceDir = dir
		return nil
	}
}

// WithTraceBuffer enables in-memory per-experiment trace capture without
// writing local artifacts — how a cluster member (lokid -trace, no -out)
// records its lane so the coordinator can pull it over the control
// protocol and merge it into the campaign's trace artifacts. Implied by
// WithTracing; a member with neither set answers trace pulls with an
// empty lane and logs a warning.
func WithTraceBuffer() Option {
	return func(s *Session) error {
		s.sink().TraceBuffer = true
		return nil
	}
}

// WithLogging sends the engines' structured diagnostics at or above min
// to w.
func WithLogging(w io.Writer, min LogLevel) Option {
	return func(s *Session) error {
		if w == nil {
			return fmt.Errorf("loki: WithLogging(nil writer)")
		}
		s.sink().Log = obs.NewLogger(w, min)
		return nil
	}
}

// ParseLogLevel parses "debug", "info", "warn", or "error" — the
// vocabulary of lokirun/lokid's -v flag.
func ParseLogLevel(v string) (LogLevel, error) { return obs.ParseLevel(v) }

// Trace is one experiment's decoded trace artifact. Trace.WriteChrome
// converts it to Chrome trace_event JSON for https://ui.perfetto.dev.
type Trace = obs.Trace

// DecodeTrace reads one expNNN.trace.jsonl artifact written by
// WithTracing.
func DecodeTrace(r io.Reader) (*Trace, error) { return obs.DecodeTrace(r) }

// Watch subscribes fn to the session's live progress events; the returned
// cancel removes the subscription. Safe to call before, during, or
// between runs — `lokirun -progress` is a Watch feeding a ticker.
func (s *Session) Watch(fn func(ProgressEvent)) (cancel func()) {
	if s == nil || s.closed || fn == nil {
		return func() {}
	}
	return s.sink().Watch(fn)
}

// Metrics returns the session's metric registry, or nil when WithMetrics
// was not applied.
func (s *Session) Metrics() *MetricsRegistry {
	if s == nil || s.c == nil || s.c.Obs == nil {
		return nil
	}
	return s.c.Obs.Metrics
}

// resolveTracing finalizes WithTracing after all options ran, so the
// empty-dir form can inherit the artifact directory regardless of option
// order.
func (s *Session) resolveTracing() error {
	if !s.traceReq {
		return nil
	}
	dir := s.traceDir
	if dir == "" {
		if s.artifacts == "" {
			return fmt.Errorf("loki: WithTracing(\"\") needs WithArtifacts to derive a trace directory")
		}
		dir = filepath.Join(s.artifacts, "traces")
	}
	s.sink().TraceDir = dir
	return nil
}

// writeMetricsSnapshot persists the registry as deterministic JSON next
// to the run's other artifacts.
func (s *Session) writeMetricsSnapshot() error {
	reg := s.Metrics()
	if s.artifacts == "" || reg == nil {
		return nil
	}
	if err := os.MkdirAll(s.artifacts, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.artifacts, "metrics.json"))
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeReport renders report.html/report.json over whatever artifacts
// the run left behind. Auto-emission is best-effort: a run that produced
// no reportable artifacts (no journal, metrics, or traces) simply writes
// no report.
func (s *Session) writeReport() error {
	if s.artifacts == "" {
		return nil
	}
	opt := report.Options{Dir: s.artifacts}
	if s.c != nil && s.c.Checkpoint != nil && s.c.Checkpoint.Dir != "" {
		opt.JournalDir = s.c.Checkpoint.Dir
	}
	if _, err := report.Generate(opt); err != nil && !errors.Is(err, report.ErrNoArtifacts) {
		return err
	}
	return nil
}

// GenerateReport renders report.html and report.json from the artifacts
// under dir — checkpoint journal, metrics.json, traces/ — without
// running anything, returning the HTML path. `lokirun -report` is this
// function.
func GenerateReport(dir string) (string, error) {
	return report.Generate(report.Options{Dir: dir})
}
