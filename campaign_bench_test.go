// Benchmarks for the parallel campaign engine and the notification hot
// path. See EXPERIMENTS.md for the recorded figures; the JSON emitter
// below regenerates BENCH_campaign.json.
//
//	go test -bench='BenchmarkCampaign|BenchmarkNotify' -benchmem
package loki_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	loki "repro"
)

// throughputCampaign builds a small sleep-dominated campaign: per-experiment
// wall time is dominated by the election run and the sync-phase spacing, so
// worker-pool scaling is visible even on few cores.
func throughputCampaign(experiments, workers int, seed int64) *loki.Campaign {
	c := electionCampaignRunFor("tp", experiments, false, seed, 25*time.Millisecond)
	c.Workers = workers
	c.Sync = loki.SyncConfig{Messages: 4, Transit: 20 * time.Microsecond, Spacing: time.Millisecond}
	c.Studies[0].Timeout = 5 * time.Second
	return c
}

// BenchmarkCampaignThroughput measures full-pipeline experiments/sec at
// several worker counts. Each iteration runs one 8-experiment campaign.
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			const experiments = 8
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				out, err := loki.RunCampaign(throughputCampaign(experiments, workers, int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if n := len(out.Study("study1").Records); n != experiments {
					b.Fatalf("got %d records, want %d", n, experiments)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*experiments)/elapsed, "experiments/sec")
			}
		})
	}
}

// BenchmarkNotifyHotPath measures the probe's notifyEvent path in
// isolation: state tracking, timeline record, and fault-parser evaluation,
// with no notify lists (no cross-node traffic) so the per-event cost is
// what is measured. The node carries fault specs over several machines;
// only the expressions mentioning the changed machine should be
// re-evaluated, and no per-event view copy should be made.
func BenchmarkNotifyHotPath(b *testing.B) {
	rt := loki.NewRuntime(loki.RuntimeConfig{})
	defer rt.Shutdown()
	rt.AddHost("h1", loki.ClockConfig{})
	sm, err := loki.ParseStateMachine(`
global_state_list
  BEGIN
  A
  B
  CRASH
  EXIT
end_global_state_list
event_list
  flip
  flop
end_event_list
state A
  flip B
state B
  flop A
state CRASH
state EXIT
`)
	if err != nil {
		b.Fatal(err)
	}
	faults, err := loki.ParseFaultSpecs(`
f1 ((m1:X) & (m2:Y)) once
f2 ((m3:X) | (m4:Y)) always
f3 ~(m5:Z) & (m6:W) always
f4 ((solo:A) & (solo:B)) always
`)
	if err != nil {
		b.Fatal(err)
	}
	rt.Register(loki.NodeDef{
		Nickname: "solo", Spec: sm, Faults: faults,
		App: loki.Instrument(func(h *loki.Handle) {
			h.NotifyEvent("A")
			<-h.Done()
		}),
	})
	n, err := rt.StartNode("solo", "h1")
	if err != nil {
		b.Fatal(err)
	}
	h := n.Handle()
	// Wait for the app to initialize the state machine.
	for {
		if _, ok := n.CurrentState(); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ev := "flip"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.NotifyEvent(ev); err != nil {
			b.Fatal(err)
		}
		if ev == "flip" {
			ev = "flop"
		} else {
			ev = "flip"
		}
	}
}

// TestEmitCampaignBenchJSON regenerates BENCH_campaign.json, the
// campaign-throughput record referenced by EXPERIMENTS.md. Skipped in
// -short mode (CI smoke runs stay fast).
func TestEmitCampaignBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench JSON emission in short mode")
	}
	type row struct {
		Workers        int     `json:"workers"`
		Virtual        bool    `json:"virtual_time,omitempty"`
		Experiments    int     `json:"experiments"`
		ElapsedSec     float64 `json:"elapsed_sec"`
		ExperimentsSec float64 `json:"experiments_per_sec"`
		Accepted       int     `json:"accepted"`
	}
	type doc struct {
		Name string `json:"name"`
		Rows []row  `json:"rows"`
		// Worker-pool scaling on the wall clock, then the virtual-time
		// engine's single-worker speedup over the same campaign: the two
		// orthogonal throughput levers.
		SpeedupX8       float64 `json:"speedup_8_vs_1"`
		VirtualSpeedupX float64 `json:"virtual_speedup_vs_real_1"`
	}
	const experiments = 16
	out := doc{Name: "campaign-throughput"}
	run := func(workers int, virtual bool) row {
		c := throughputCampaign(experiments, workers, 42)
		c.VirtualTime = virtual
		start := time.Now()
		res, err := loki.RunCampaign(c)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		sr := res.Study("study1")
		accepted := 0
		for _, r := range sr.Records {
			if r.Accepted {
				accepted++
			}
		}
		t.Logf("workers=%d virtual=%v: %.2f experiments/sec (%d accepted)",
			workers, virtual, float64(experiments)/elapsed, accepted)
		return row{
			Workers:        workers,
			Virtual:        virtual,
			Experiments:    experiments,
			ElapsedSec:     elapsed,
			ExperimentsSec: float64(experiments) / elapsed,
			Accepted:       accepted,
		}
	}
	for _, workers := range []int{1, 4, 8} {
		out.Rows = append(out.Rows, run(workers, false))
	}
	for _, workers := range []int{1, 8} {
		out.Rows = append(out.Rows, run(workers, true))
	}
	out.SpeedupX8 = out.Rows[2].ExperimentsSec / out.Rows[0].ExperimentsSec
	out.VirtualSpeedupX = out.Rows[3].ExperimentsSec / out.Rows[0].ExperimentsSec
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
