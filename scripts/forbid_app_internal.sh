#!/bin/sh
# Guardrail: applications and examples stay on the public SPI. The whole
# point of the repro/app package is that an application under study needs
# no internal/ imports — the node handle, the spec builder, the probe
# fault actions, the message-registration hook, and the registry are all
# public. If a zoo member or an example quietly reached into
# internal/probe, internal/spec, or internal/core, user applications
# copying it would break the moment internal/ churns, and the SPI's
# compatibility promise would be fiction.
#
# Scope:
#   - apps/      non-test sources: the zoo is the exemplar user code, so
#                it must compile against repro/app alone. Test files may
#                use the internal runtime harness (they exercise fault
#                injection and timeline plumbing beyond the SPI surface,
#                as any white-box test may).
#   - examples/  all sources: examples are user-facing documentation and
#                must never demonstrate an internal/probe, internal/spec,
#                or internal/core import. Other internal packages (e.g.
#                internal/measure's custom observation callbacks in the
#                chaos example) remain legal until their surfaces are
#                lifted too.
#
# Run from the repository root: scripts/forbid_app_internal.sh
set -eu

pattern='"repro/internal/(probe|spec|core)"'

matches=$(
  {
    grep -rnE --include='*.go' "$pattern" apps/ | grep -v '_test\.go:' || true
    grep -rnE --include='*.go' "$pattern" examples/ || true
  }
)

if [ -n "$matches" ]; then
  echo "internal probe/spec/core imports outside the SPI (use repro/app):" >&2
  echo "$matches" >&2
  exit 1
fi
echo "forbid_app_internal: clean"
