#!/bin/sh
# Guardrail: no raw printing or stdlib logging in internal/ — engine
# diagnostics go through the structured leveled logger (internal/obs), so
# `lokirun -v` / `lokid -v` control everything and silent-by-default runs
# stay silent. Commands (cmd/) own their stdout and are exempt.
#
# Allowlisted exceptions:
#   - internal/obs/          the logger implementation itself.
#   - *_test.go              tests may print.
#
# Run from the repository root: scripts/forbid_rawlog.sh
set -eu

pattern='\b(fmt\.Print(ln|f)?|log\.(Print(ln|f)?|Fatal(ln|f)?|Panic(ln|f)?))\('

matches=$(grep -rnE --include='*.go' "$pattern" internal/ \
  | grep -v '_test\.go:' \
  | grep -v '^internal/obs/' \
  || true)

if [ -n "$matches" ]; then
  echo "raw print/log calls in internal/ (route diagnostics through internal/obs):" >&2
  echo "$matches" >&2
  exit 1
fi
echo "forbid_rawlog: clean"
