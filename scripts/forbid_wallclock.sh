#!/bin/sh
# Guardrail: no direct wall-clock calls in internal/ outside the injected
# clock abstraction. Every time source the engine or the built-in
# applications block on must go through clock.Clock (internal/clock), or
# virtual-time campaigns silently fall out of sync with real ones.
#
# Allowlisted exceptions, each a documented boundary with real time:
#   - internal/clock/        the abstraction itself (Real wraps the time
#                            package; SpinWait's sub-millisecond spin).
#   - internal/vclock/       NewSystemSource is the sanctioned wall-clock
#                            tick source behind the host-clock geometry.
#   - internal/obs/          obs.Now() is the sanctioned wall-clock
#                            accessor for operational latencies (journal
#                            fsync, analysis, worker utilization) and log
#                            timestamps; experiment-visible trace spans
#                            take their times from the injected clock.
#   - internal/campaign/cluster.go
#                            socket retry/ack timeouts: cluster peers are
#                            separate processes on real sockets and can
#                            never run under virtual time (Open rejects
#                            the combination).
#   - *_test.go              tests may time themselves.
#
# Run from the repository root: scripts/forbid_wallclock.sh
set -eu

pattern='time\.(Now|Sleep|After|AfterFunc|NewTimer|NewTicker|Tick|Since|Until)\('

matches=$(grep -rnE --include='*.go' "$pattern" internal/ \
  | grep -v '_test\.go:' \
  | grep -v '^internal/clock/' \
  | grep -v '^internal/vclock/' \
  | grep -v '^internal/obs/' \
  | grep -v '^internal/campaign/cluster\.go:' \
  || true)

if [ -n "$matches" ]; then
  echo "wall-clock calls outside internal/clock (use the injected clock.Clock):" >&2
  echo "$matches" >&2
  exit 1
fi
echo "forbid_wallclock: clean"
