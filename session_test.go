package loki_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	loki "repro"
	"repro/apps/election"
)

// parityConfigDoc builds the campaign-file side of the parity test: an
// election matrix of {baseline, netsplit} x seeds over three hosts,
// optionally forcing every point study onto a socket transport.
func parityConfigDoc(transport string, seeds []int64, experiments int) []byte {
	type m = map[string]any
	seedsAny := make([]any, len(seeds))
	for i, s := range seeds {
		seedsAny[i] = s
	}
	doc := m{
		"name": "parity",
		"hosts": []any{
			m{"name": "h1"},
			m{"name": "h2", "offset_ns": 5e6, "drift_ppm": 80},
			m{"name": "h3", "offset_ns": -2e6, "drift_ppm": -45},
		},
		"sync":      m{"messages": 10, "transit": "25µs"},
		"transport": transport,
		"matrix": m{
			"name": "parity",
			"scenarios": []any{
				m{"name": "baseline"},
				// Every machine enters its own ELECT state at startup, so
				// the injection set is deterministic (a LEAD-triggered
				// fault would fire only on the timing-dependent winner),
				// and self-atoms are provably correct under any clocks.
				m{"name": "slowstart", "faults": []any{
					"black bslow (black:ELECT) once delay(h1,*,1ms) 20ms",
					"green gslow (green:ELECT) once delay(h2,*,1ms) 20ms",
					"yellow yslow (yellow:ELECT) once delay(h3,*,1ms) 20ms",
				}},
			},
			"seeds": seedsAny,
			"study": m{
				"name": "", "app": "election",
				"nodes": []any{
					m{"name": "black", "host": "h1"},
					m{"name": "green", "host": "h2"},
					m{"name": "yellow", "host": "h3"},
				},
				"experiments": experiments,
				"runfor":      "80ms",
				"timeout":     "10s",
			},
		},
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return b
}

// legacyParityMatrix hand-wires, in Go, exactly what parityConfigDoc
// declares — the pre-Session RunMatrix path.
func legacyParityMatrix(t *testing.T, transport string, seeds []int64, experiments int) (*loki.Campaign, *loki.Matrix) {
	t.Helper()
	peers := []string{"black", "green", "yellow"}
	hosts := []string{"h1", "h2", "h3"}
	faults, err := loki.ParseScenarioFaults(`
black bslow (black:ELECT) once delay(h1,*,1ms) 20ms
green gslow (green:ELECT) once delay(h2,*,1ms) 20ms
yellow yslow (yellow:ELECT) once delay(h3,*,1ms) 20ms
`)
	if err != nil {
		t.Fatal(err)
	}
	m := &loki.Matrix{
		Name: "parity",
		Scenarios: []loki.Scenario{
			{Name: "baseline"},
			{Name: "slowstart", Faults: faults},
		},
		Seeds: seeds,
		Build: func(p loki.MatrixPoint) (*loki.Study, error) {
			var nodes []loki.NodeDef
			var placement []loki.NodeEntry
			for i, nick := range peers {
				// The same construction internal/config performs: the
				// point seed drives the application, offset per machine.
				in := election.New(election.Config{
					Peers:  peers,
					RunFor: 80 * time.Millisecond,
					Seed:   p.Seed + int64(i)*17,
				})
				nodes = append(nodes, loki.NodeDef{
					Nickname: nick,
					Spec:     election.SpecFor(nick, peers),
					App:      in,
				})
				placement = append(placement, loki.NodeEntry{Nickname: nick, Host: hosts[i]})
			}
			return &loki.Study{
				Nodes:       nodes,
				Placement:   placement,
				Experiments: experiments,
				Timeout:     10 * time.Second,
				Transport:   transport,
			}, nil
		},
	}
	c := &loki.Campaign{
		Name: "parity",
		Hosts: []loki.HostDef{
			{Name: "h1", Clock: loki.ClockConfig{}},
			{Name: "h2", Clock: loki.ClockConfig{Offset: 5e6, DriftPPM: 80}},
			{Name: "h3", Clock: loki.ClockConfig{Offset: -2e6, DriftPPM: -45}},
		},
		Sync: loki.SyncConfig{Messages: 10, Transit: 25 * time.Microsecond},
	}
	return c, m
}

// canonRecord serializes everything deterministic about a record — the
// analysis decisions and runtime outcomes — as comparison bytes. Raw clock
// readings (bounds, event timestamps, injection instants) come from live
// clocks and legitimately differ between two executions, so they are
// excluded; everything the pipeline *decides* must be byte-identical.
func canonRecord(rec *loki.ExperimentRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "study=%s index=%d completed=%v accepted=%v analysisError=%q clockStep=%v hosts=%v\n",
		rec.Study, rec.Index, rec.Completed, rec.Accepted, rec.AnalysisError,
		rec.ClockStepSuspected, rec.ClockStepHosts)
	if rec.Outcomes != nil {
		keys := make([]string, 0, len(rec.Outcomes))
		for k := range rec.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "outcome %s=%s\n", k, rec.Outcomes[k])
		}
	}
	if rec.Report != nil {
		// Injections project onto the global timeline in reference-time
		// order, and cross-machine interleaving legitimately varies with
		// live clocks (matrix_test's canonGlobal makes the same call):
		// compare the set, sorted, not the interleaving.
		var inj []string
		for _, chk := range rec.Report.Injections {
			inj = append(inj, fmt.Sprintf("injection %s/%s correct=%v\n", chk.Machine, chk.Fault, chk.Correct))
		}
		sort.Strings(inj)
		for _, line := range inj {
			b.WriteString(line)
		}
		miss := append([]string(nil), rec.Report.MissingFaults...)
		sort.Strings(miss)
		for _, m := range miss {
			fmt.Fprintf(&b, "missing %s\n", m)
		}
	}
	return b.String()
}

func canonMatrix(t *testing.T, out *loki.MatrixOutcome) string {
	t.Helper()
	var b strings.Builder
	for _, pr := range out.Points {
		if pr == nil || pr.Study == nil {
			t.Fatal("missing point result")
		}
		fmt.Fprintf(&b, "== point %s ==\n", pr.Point.Name())
		for _, rec := range pr.Study.Records {
			if rec == nil {
				t.Fatalf("point %s: missing record", pr.Point.Name())
			}
			b.WriteString(canonRecord(rec))
		}
	}
	return b.String()
}

// TestSessionParityMatrix proves the Session+campaign-file path and the
// legacy RunMatrix path are the same engine behind different front doors:
// the same matrix produces byte-identical canonical records — acceptance,
// outcomes, injection verdicts, analysis errors — in-process and over UDP
// loopback. Run under -race in CI.
func TestSessionParityMatrix(t *testing.T) {
	run := func(t *testing.T, transport string, seeds []int64, experiments int) {
		cfg, err := loki.ParseCampaignFile(parityConfigDoc(transport, seeds, experiments))
		if err != nil {
			t.Fatal(err)
		}
		s, err := loki.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Matrix == nil {
			t.Fatal("session run returned no matrix result")
		}

		c, m := legacyParityMatrix(t, transport, seeds, experiments)
		legacy, err := loki.RunMatrix(c, m)
		if err != nil {
			t.Fatal(err)
		}

		got, want := canonMatrix(t, res.Matrix), canonMatrix(t, legacy)
		if got != want {
			t.Errorf("session and legacy records differ:\n--- session ---\n%s\n--- legacy ---\n%s", got, want)
		}
		if accepted, total := res.Matrix.AcceptedTotal(); accepted == 0 || total == 0 {
			t.Errorf("parity is vacuous: accepted %d/%d", accepted, total)
		}
	}
	t.Run("inproc", func(t *testing.T) { run(t, "", []int64{1, 2}, 3) })
	t.Run("udp", func(t *testing.T) { run(t, loki.TransportUDP, []int64{1}, 2) })
}

// sessionCancelCampaign is a slow-ish election campaign for cancellation
// tests: enough experiments that a mid-run cancel leaves work undone.
func sessionCancelCampaign(experiments int, dir string) *loki.Campaign {
	peers := []string{"black", "green", "yellow"}
	hosts := []string{"h1", "h2", "h3"}
	var nodes []loki.NodeDef
	var placement []loki.NodeEntry
	for i, nick := range peers {
		in := election.New(election.Config{Peers: peers, RunFor: 60 * time.Millisecond, Seed: int64(i) * 7})
		nodes = append(nodes, loki.NodeDef{Nickname: nick, Spec: election.SpecFor(nick, peers), App: in})
		placement = append(placement, loki.NodeEntry{Nickname: nick, Host: hosts[i]})
	}
	c := &loki.Campaign{
		Name:    "cancel",
		Hosts:   []loki.HostDef{{Name: "h1"}, {Name: "h2"}, {Name: "h3"}},
		Workers: 1,
		Studies: []*loki.Study{{
			Name: "s", Nodes: nodes, Placement: placement,
			Experiments: experiments, Timeout: 10 * time.Second,
		}},
		Sync: loki.SyncConfig{Messages: 6, Transit: 10 * time.Microsecond},
	}
	if dir != "" {
		c.Checkpoint = &loki.Checkpoint{Dir: dir}
	}
	return c
}

// TestSessionCancelAndResume: cancelling ctx mid-campaign returns
// context.Canceled without losing journaled progress; Resume finishes only
// the missing experiments.
func TestSessionCancelAndResume(t *testing.T) {
	dir := t.TempDir()
	const experiments = 8

	s, err := loki.Open(sessionCancelCampaign(experiments, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// One experiment takes >=60ms of app run time plus two sync
		// phases; cancel while the campaign is mid-flight.
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run error = %v, want context.Canceled", err)
	}

	st, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	_, complete, _ := st.Totals()
	if complete >= experiments {
		t.Fatalf("cancellation did not interrupt: %d/%d complete", complete, experiments)
	}

	// Resume on a fresh session over the same spec: only the missing
	// experiments run, and the full record set comes back.
	s2, err := loki.Open(sessionCancelCampaign(experiments, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Campaign.Study("s")
	if len(sr.Records) != experiments {
		t.Fatalf("resumed records = %d, want %d", len(sr.Records), experiments)
	}
	for i, rec := range sr.Records {
		if rec == nil || rec.Index != i {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	st2, err := s2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if _, complete, _ := st2.Totals(); complete != experiments {
		t.Fatalf("post-resume complete = %d, want %d", complete, experiments)
	}
	if !st2.FingerprintMatch {
		t.Error("same configuration reported a fingerprint mismatch")
	}
}

// TestSessionStatusCountsAcceptance: Status reports expected vs complete
// vs accepted per study without running anything.
func TestSessionStatusCountsAcceptance(t *testing.T) {
	dir := t.TempDir()
	c := sessionCancelCampaign(2, dir)
	s, err := loki.Open(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Points) != 1 || st.Points[0].Point != "s" {
		t.Fatalf("points = %+v", st.Points)
	}
	p := st.Points[0]
	if p.Expected != 2 || p.Complete != 2 || p.Missing() != 0 {
		t.Errorf("progress = %+v", p)
	}
	if p.Accepted != 2 || st.AcceptRate() != 1 {
		t.Errorf("acceptance: %+v rate %v (fault-free deterministic walk should fully accept)", p, st.AcceptRate())
	}
	if st.Torn {
		t.Error("clean journal reported torn")
	}
}

// TestSessionStatusDetectsStudyLevelMismatch: the campaign-level header
// hash excludes per-study configuration (transport, faults); Status must
// still report a mismatch Resume would refuse.
func TestSessionStatusDetectsStudyLevelMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := loki.Open(sessionCancelCampaign(1, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Same campaign, different study transport: header matches, study
	// fingerprint must not.
	s2, err := loki.Open(sessionCancelCampaign(1, dir), loki.WithTransport(loki.TransportTCP), loki.WithCheckpoint(dir, true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.FingerprintMatch {
		t.Error("transport change not reflected in FingerprintMatch (resume would refuse these records)")
	}
}

// TestSessionValidation: the up-front count validation surfaces through
// Open/Run with clear errors instead of silent clamping.
func TestSessionValidation(t *testing.T) {
	c := sessionCancelCampaign(2, "")
	c.Workers = -1
	if _, err := loki.Open(c); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("negative workers: %v", err)
	}

	c = sessionCancelCampaign(2, "")
	c.Studies[0].Experiments = 0
	s, err := loki.Open(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "Experiments") {
		t.Errorf("zero experiments: %v", err)
	}

	if _, err := loki.Open(42); err == nil {
		t.Error("Open(42) accepted")
	}
	if _, err := loki.Open(nil); err == nil {
		t.Error("Open(nil) accepted")
	}
}

// TestLegacyRunMatrixIgnoresStudies: the deprecated shim must keep the
// legacy engine's behavior of ignoring Campaign.Studies (points come from
// Matrix.Build), which Open would otherwise reject as ambiguous.
func TestLegacyRunMatrixIgnoresStudies(t *testing.T) {
	c, m := legacyParityMatrix(t, "", []int64{1}, 1)
	c.Studies = sessionCancelCampaign(1, "").Studies // reused for both entry points
	out, err := loki.RunMatrix(c, m)
	if err != nil {
		t.Fatalf("RunMatrix with Studies set: %v", err)
	}
	if len(out.Points) != 2 {
		t.Fatalf("points = %d", len(out.Points))
	}
	if c.Studies == nil {
		t.Error("shim cleared the caller's Studies")
	}
}

// TestWithTransportEmptyIsNoOp: an empty kind must leave the spec's
// transports alone — not downgrade socket studies to inproc.
func TestWithTransportEmptyIsNoOp(t *testing.T) {
	c := sessionCancelCampaign(1, "")
	c.Studies[0].Transport = loki.TransportUDP
	s, err := loki.Open(c, loki.WithTransport(""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The study must have actually run clustered; a silent inproc
	// downgrade would still produce records, so assert on the spec the
	// engine saw rather than the outcome shape.
	if got := len(res.Campaign.Study("s").Records); got != 1 {
		t.Fatalf("records = %d", got)
	}
	if c.Studies[0].Transport != loki.TransportUDP {
		t.Errorf("spec transport rewritten to %q", c.Studies[0].Transport)
	}
}

// TestRunOneRejectsMatrix: RunOne on a matrix session must say so, not
// leak the engine's "need hosts and a study" misdirection.
func TestRunOneRejectsMatrix(t *testing.T) {
	c, m := legacyParityMatrix(t, "", []int64{1}, 1)
	s, err := loki.Open(c, loki.WithMatrix(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunOne(context.Background()); err == nil || !strings.Contains(err.Error(), "matrix") {
		t.Errorf("RunOne on matrix session: %v", err)
	}
}

// TestSessionIgnoresFileClusterSectionInProcess: a campaign file that
// carries a cluster section (shared by every lokid peer) must stay
// runnable in-process — the section binds only through WithCluster.
func TestSessionIgnoresFileClusterSectionInProcess(t *testing.T) {
	doc := []byte(`{
  "name": "cl",
  "hosts": [{"name": "h1"}],
  "cluster": {"kind": "udp",
    "peers": {"alpha": "127.0.0.1:7101", "beta": "127.0.0.1:7102"},
    "owners": {"h1": "alpha"}},
  "studies": [{"name": "s", "app": "election", "experiments": 1,
    "nodes": [{"name": "m0", "host": "h1"}], "runfor": "30ms"}]
}`)
	cfg, err := loki.ParseCampaignFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := loki.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("in-process run of a cluster-carrying file: %v", err)
	}
	if res.Served || res.Campaign == nil || len(res.Campaign.Study("s").Records) != 1 {
		t.Fatalf("result = %+v", res)
	}
}

// TestSessionResumeDoesNotMutateSpec: Resume flips the session's own
// checkpoint copy, never the caller's.
func TestSessionResumeDoesNotMutateSpec(t *testing.T) {
	dir := t.TempDir()
	c := sessionCancelCampaign(1, dir)
	s, err := loki.Open(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Checkpoint.Resume {
		t.Error("Resume mutated the caller's Checkpoint")
	}
}

// TestSessionTransportOverrideDoesNotMutateSpec: WithTransport must leave
// the caller's campaign untouched.
func TestSessionTransportOverrideDoesNotMutateSpec(t *testing.T) {
	c := sessionCancelCampaign(1, "")
	s, err := loki.Open(c, loki.WithTransport(loki.TransportUDP))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Studies[0].Transport != "" {
		t.Errorf("caller's study transport mutated to %q", c.Studies[0].Transport)
	}
}
