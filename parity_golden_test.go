package loki_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	loki "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden journals")

// Golden journal parity: the built-in applications, built through the
// campaign-file path, must keep producing canonical records byte-identical
// to the journals captured before the application layer moved onto the
// public SPI. Virtual time plus one worker makes the checkpoint journal
// fully deterministic (PR 6), so the whole file — header fingerprint,
// record wire bytes, done markers — is the comparison unit: any behavioural
// drift in a ported application, the registry build path, or the record
// encoding shows up as a byte diff.

const goldenElectionDoc = `{
  "name": "golden-election",
  "seed": 7,
  "virtual_time": true,
  "workers": 1,
  "hosts": [
    {"name": "h1"},
    {"name": "h2", "offset_ns": 5000000, "drift_ppm": 80},
    {"name": "h3", "offset_ns": -2000000, "drift_ppm": -45}
  ],
  "sync": {"messages": 10, "transit": "25µs"},
  "studies": [{
    "name": "golden",
    "app": "election",
    "nodes": [
      {"name": "black", "host": "h1"},
      {"name": "green", "host": "h2"},
      {"name": "yellow", "host": "h3"}
    ],
    "faults": [
      "black bfault (black:ELECT) once",
      "green gfault (green:ELECT) once"
    ],
    "experiments": 4,
    "runfor": "80ms",
    "dormancy": "5ms",
    "timeout": "10s"
  }]
}`

const goldenReplicaDoc = `{
  "name": "golden-replica",
  "seed": 11,
  "virtual_time": true,
  "workers": 1,
  "hosts": [
    {"name": "h1"},
    {"name": "h2", "offset_ns": 3000000, "drift_ppm": 60},
    {"name": "h3", "offset_ns": -4000000, "drift_ppm": -30}
  ],
  "sync": {"messages": 10, "transit": "25µs"},
  "studies": [{
    "name": "golden",
    "app": "replica",
    "nodes": [
      {"name": "r1", "host": "h1"},
      {"name": "r2", "host": "h2"},
      {"name": "r3", "host": "h3"}
    ],
    "faults": [
      "r1 pfault (r1:PRIMARY) once"
    ],
    "experiments": 4,
    "runfor": "80ms",
    "dormancy": "3ms",
    "timeout": "10s"
  }]
}`

func runGoldenJournal(t *testing.T, doc, goldenPath string) {
	t.Helper()
	cfg, err := loki.ParseCampaignFile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := loki.Open(cfg, loki.WithCheckpoint(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "checkpoint.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte(`"Accepted":true`)) {
		t.Fatalf("golden run is vacuous: no accepted experiment in journal")
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden journal (regenerate with `go test -run TestGoldenAppParity -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("journal differs from pre-refactor golden %s:\n%s", goldenPath, firstJournalDiff(got, want))
	}
}

// firstJournalDiff locates the first differing line for a readable failure.
func firstJournalDiff(got, want []byte) string {
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			return fmt.Sprintf("line %d:\n  got:  %.300s\n  want: %.300s", i+1, g, w)
		}
	}
	return "files identical?"
}

// TestGoldenAppParity proves the ported built-in applications produce
// records byte-identical to the journals captured before the SPI refactor.
func TestGoldenAppParity(t *testing.T) {
	t.Run("election", func(t *testing.T) {
		runGoldenJournal(t, goldenElectionDoc, filepath.Join("testdata", "golden_election.journal"))
	})
	t.Run("replica", func(t *testing.T) {
		runGoldenJournal(t, goldenReplicaDoc, filepath.Join("testdata", "golden_replica.journal"))
	})
}
