package loki

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/faultexpr"
	"repro/internal/simnet"
)

// Chaos subsystem (internal/chaos): state-triggered network and host fault
// actions, and the scenario matrix engine that fans one configuration out
// into {scenarios × latency profiles × seeds} studies.
type (
	// ChaosAction is one installable fault: Partition, HealPartition,
	// DropMessages, DelayMessages, DuplicateMessages, CorruptPayload,
	// CrashRestart, or ClockStep.
	ChaosAction = chaos.Action
	// ChaosEnv is the testbed surface actions manipulate.
	ChaosEnv = chaos.Env
	// ChaosEngine dispatches fired action faults onto an env.
	ChaosEngine = chaos.Engine
	// ActionCall is a fault specification's trailing action invocation,
	// e.g. "partition(h1|h2,h3) 50ms".
	ActionCall = faultexpr.ActionCall
	// LinkFilter is a traffic filter interposed on a host link.
	LinkFilter = simnet.Filter
	// LinkFate is a filter's verdict on one message.
	LinkFate = simnet.Fate
	// NetLink is a directed host pair ("*" is a wildcard side).
	NetLink = simnet.Link

	// Scenario is one named chaos configuration: fault entries overlaid
	// onto a study's node definitions.
	Scenario = campaign.Scenario
	// ScenarioFault attaches one fault entry to a machine.
	ScenarioFault = campaign.ScenarioFault
	// LatencyProfile names one notification-latency configuration.
	LatencyProfile = campaign.LatencyProfile
	// Matrix expands {scenarios × latency profiles × seeds} into studies.
	Matrix = campaign.Matrix
	// MatrixPoint is one cell of an expanded matrix.
	MatrixPoint = campaign.Point
	// MatrixOutcome is a matrix campaign's complete output.
	MatrixOutcome = campaign.MatrixResult
	// PointOutcome pairs a matrix point with its study outcome.
	PointOutcome = campaign.PointResult
)

// AttachChaos binds a chaos engine to a runtime: fault specification
// entries that name a built-in action (see ParseChaosAction) are executed
// by the engine when they fire, instead of the application's InjectFault
// callback. RunCampaign attaches one automatically when a study carries
// action faults; call this only for hand-rolled runtimes.
func AttachChaos(rt *Runtime, seed int64) *ChaosEngine { return chaos.Attach(rt, seed) }

// ParseChaosAction resolves a fault entry's action call into a built-in
// chaos action.
func ParseChaosAction(call *ActionCall) (ChaosAction, error) { return chaos.ParseAction(call) }

// RunMatrix executes every point of the matrix on c's testbed
// configuration, sharding points across the campaign's worker pool.
// Results land at their point index, so any worker count orders results
// identically.
//
// Deprecated: RunMatrix is a thin shim over the Session API and will be
// removed next release. Use Open(c, WithMatrix(m)) and Session.Run:
//
//	s, err := loki.Open(c, loki.WithMatrix(m))
//	res, err := s.Run(ctx) // res.Matrix is this function's return
func RunMatrix(c *Campaign, m *Matrix) (*MatrixOutcome, error) {
	// The legacy engine ignored c.Studies (points come from m.Build);
	// preserve that here, where Open would reject the ambiguity.
	cc := *c
	cc.Studies = nil
	s, err := Open(&cc, WithMatrix(m))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Matrix, nil
}

// ParseScenarioFaults parses machine-prefixed fault lines
// ("<machine> <name> <expr> <once|always> [action(args) [for]]") into
// scenario faults.
func ParseScenarioFaults(doc string) ([]ScenarioFault, error) {
	return campaign.ParseScenarioFaults(doc)
}

// ValidateChaosSpecs parses every action call in the definitions' fault
// entries, rejecting misspelled actions — and, when hosts is non-empty,
// typoed host references — before a campaign runs.
func ValidateChaosSpecs(defs []core.NodeDef, hosts []string) error {
	return chaos.ValidateSpecs(defs, hosts)
}
