package loki_test

import (
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	loki "repro"
)

// runChaosObserved runs the shared chaos matrix (2 points x 2 experiments)
// under virtual time on one worker, with the given observability options.
func runChaosObserved(t *testing.T, opts ...loki.Option) *loki.MatrixOutcome {
	t.Helper()
	opts = append([]loki.Option{
		loki.WithMatrix(chaosMatrix(t, 2)),
		loki.WithVirtualTime(),
	}, opts...)
	s, err := loki.Open(chaosCampaign(1), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil {
		t.Fatal("expected a matrix result")
	}
	return res.Matrix
}

// readTree loads every file under root keyed by its relative path.
func readTree(t *testing.T, root string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		out[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceDeterminism: two virtual-time chaos-matrix runs write
// byte-identical trace artifacts — the spans and events are timestamped by
// the injected virtual clock, so the whole trace tree is reproducible,
// file names and bytes alike.
func TestTraceDeterminism(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	runChaosObserved(t, loki.WithTracing(dir1))
	runChaosObserved(t, loki.WithTracing(dir2))
	t1, t2 := readTree(t, dir1), readTree(t, dir2)
	if len(t1) == 0 {
		t.Fatal("no trace artifacts written")
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace trees differ in size: %d vs %d files", len(t1), len(t2))
	}
	for rel, body := range t1 {
		other, ok := t2[rel]
		if !ok {
			t.Errorf("trace %s missing from the second run", rel)
			continue
		}
		if body != other {
			t.Errorf("trace %s differs between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", rel, body, other)
		}
	}
	// The matrix has 2 points x 2 experiments: one trace per experiment.
	if len(t1) != 4 {
		t.Errorf("trace tree holds %d files, want 4", len(t1))
	}
}

// TestTracingPreservesRecords: enabling tracing must not perturb the
// pipeline — canonical records and the checkpoint journal are byte-for-
// byte what an untraced run produces. Run under -race in CI.
func TestTracingPreservesRecords(t *testing.T) {
	journal := func(dir string) string {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, "checkpoint.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	plainDir, tracedDir := t.TempDir(), t.TempDir()
	plain := runChaosObserved(t, loki.WithCheckpoint(plainDir, false))
	traced := runChaosObserved(t, loki.WithCheckpoint(tracedDir, false),
		loki.WithTracing(t.TempDir()), loki.WithMetrics())

	if len(plain.Points) != len(traced.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(plain.Points), len(traced.Points))
	}
	for i := range plain.Points {
		pr, tr := plain.Points[i], traced.Points[i]
		for j := range pr.Study.Records {
			got, want := canonRecord(tr.Study.Records[j]), canonRecord(pr.Study.Records[j])
			if got != want {
				t.Errorf("point %s experiment %d diverges with tracing on:\n--- traced ---\n%s--- plain ---\n%s",
					pr.Point.Name(), j, got, want)
			}
		}
	}
	if j1, j2 := journal(plainDir), journal(tracedDir); j1 != j2 {
		t.Errorf("checkpoint journal differs with tracing on:\n--- plain ---\n%s\n--- traced ---\n%s", j1, j2)
	}
}

// TestSessionWatch: the live progress stream delivers study-start, one
// event per completed experiment with cumulative counts, and study-done;
// a cancelled watcher receives nothing more.
func TestSessionWatch(t *testing.T) {
	cfg, err := loki.ParseCampaignFile(virtualParityDoc(true, 3, 1, ""))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		events []loki.ProgressEvent
	)
	s, err := loki.Open(cfg, loki.WithObserver(func(ev loki.ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A watcher cancelled before the run must stay silent.
	silent := 0
	cancel := s.Watch(func(loki.ProgressEvent) { silent++ })
	cancel()

	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if silent != 0 {
		t.Errorf("cancelled watcher received %d events", silent)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 5 { // start + 3 experiments + done
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	first, last := events[0], events[len(events)-1]
	if first.Kind != loki.EventStudyStart || first.Point != "s1" || first.Experiments != 3 || first.Completed != 0 {
		t.Errorf("first event = %+v, want study-start s1 0/3", first)
	}
	if last.Kind != loki.EventStudyDone || last.Completed != 3 {
		t.Errorf("last event = %+v, want study-done 3/3", last)
	}
	for i, ev := range events[1 : len(events)-1] {
		if ev.Kind != loki.EventExperiment {
			t.Errorf("event %d kind = %s, want experiment", i+1, ev.Kind)
		}
		if ev.Completed != i+1 {
			t.Errorf("event %d completed = %d, want %d (cumulative)", i+1, ev.Completed, i+1)
		}
	}
}

// TestMetricsSnapshotArtifact: WithArtifacts + WithMetrics ends the run
// with a parseable metrics.json whose experiment counters match the
// campaign, and the registry stays reachable through Session.Metrics.
func TestMetricsSnapshotArtifact(t *testing.T) {
	dir := t.TempDir()
	cfg, err := loki.ParseCampaignFile(virtualParityDoc(true, 3, 1, ""))
	if err != nil {
		t.Fatal(err)
	}
	s, err := loki.Open(cfg, loki.WithArtifacts(dir), loki.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Metrics() == nil {
		t.Fatal("Session.Metrics() is nil with WithMetrics")
	}
	b, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	total := snap.Counters[`loki_experiments_total{result="accepted"}`] +
		snap.Counters[`loki_experiments_total{result="rejected"}`] +
		snap.Counters[`loki_experiments_total{result="aborted"}`]
	if total != 3 {
		t.Errorf("experiment verdict counters sum to %d, want 3 (counters: %v)", total, snap.Counters)
	}
	if _, ok := snap.Histograms[`loki_experiment_phase_seconds{phase="run"}`]; !ok {
		t.Errorf("phase histogram missing from snapshot: %v", snap.Histograms)
	}
}

// TestTracingNeedsDir: the empty-dir WithTracing form derives OUT/traces
// from WithArtifacts in either option order, and fails at Open without it.
func TestTracingNeedsDir(t *testing.T) {
	cfg, err := loki.ParseCampaignFile(virtualParityDoc(true, 1, 1, ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loki.Open(cfg, loki.WithTracing("")); err == nil {
		t.Error("Open accepted WithTracing(\"\") without artifacts")
	}
	dir := t.TempDir()
	s, err := loki.Open(cfg, loki.WithTracing(""), loki.WithArtifacts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	traces := readTree(t, filepath.Join(dir, "traces"))
	if len(traces) != 1 {
		t.Errorf("expected 1 trace under OUT/traces, found %d", len(traces))
	}
}
