// Package election implements the thesis's test application (Chapter 5): a
// leader election protocol over n processes. Each process picks a random
// number and sends it to the others; the process with the highest number
// leads; ties re-run the round. When the leader crashes the remaining
// processes elect a new leader, and crashed processes can restart and join
// the system again as followers (§5.2).
//
// The application is instrumented exactly as §5.5 prescribes: state
// machine events are reported through the probe handle at the abstraction
// level of Fig. 5.1 (INIT, ELECT, LEAD, FOLLOW, RESTART_SM, CRASH, EXIT).
// Leader-crash detection, which the thesis leaves to the application,
// uses leader heartbeats over the application bus.
//
// The package is written against the public SPI (repro/app) only and
// registers itself as "election" — the exemplar for user applications.
package election

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/app"
)

func init() {
	// Bus messages must survive a socket transport's gob envelope.
	app.RegisterMessage(voteMsg{}, heartbeatMsg{})
	app.MustRegister("election", func(p app.Params) (*app.Instrumented, *app.StateMachine) {
		in := New(Config{Peers: p.Peers, RunFor: p.RunFor, Seed: p.Seed})
		return in, SpecFor(p.Nick, p.Peers)
	})
}

// Events of the Fig. 5.1 state machine.
const (
	EvStart       = "START"
	EvInitDone    = "INIT_DONE"
	EvRestart     = "RESTART"
	EvRestartDone = "RESTART_DONE"
	EvLeader      = "LEADER"
	EvFollower    = "FOLLOWER"
	EvLeaderCrash = "LEADER_CRASH"
	EvCrash       = "CRASH"
	EvError       = "ERROR"
)

// States of the Fig. 5.1 state machine.
const (
	StInit      = "INIT"
	StRestartSM = "RESTART_SM"
	StElect     = "ELECT"
	StLead      = "LEAD"
	StFollow    = "FOLLOW"
)

// SpecFor builds the §5.3 state machine specification for one process,
// with the notify lists pointing at the other processes — derived, as §5.3
// explains, from the fault specifications' need to observe INIT,
// RESTART_SM, and CRASH remotely.
func SpecFor(self string, peers []string) *app.StateMachine {
	notify := ""
	for _, p := range peers {
		if p != self {
			notify += " " + p
		}
	}
	doc := fmt.Sprintf(`
global_state_list
  BEGIN
  INIT
  RESTART_SM
  ELECT
  FOLLOW
  LEAD
  CRASH
  EXIT
end_global_state_list
event_list
  START
  INIT_DONE
  RESTART
  RESTART_DONE
  LEADER
  FOLLOWER
  LEADER_CRASH
  CRASH
  ERROR
end_event_list

state BEGIN
  START INIT
  RESTART RESTART_SM

state INIT notify%[1]s
  INIT_DONE ELECT
  ERROR EXIT

state RESTART_SM notify%[1]s
  RESTART_DONE FOLLOW
  ERROR EXIT

state ELECT notify%[1]s
  FOLLOWER FOLLOW
  LEADER LEAD
  CRASH CRASH
  ERROR EXIT

state LEAD notify%[1]s
  CRASH CRASH
  ERROR EXIT

state FOLLOW notify%[1]s
  LEADER_CRASH ELECT
  CRASH CRASH
  ERROR EXIT

state CRASH notify%[1]s
state EXIT notify%[1]s
`, notify)
	return app.MustParseSpec(doc)
}

// Config parameterizes one election process.
type Config struct {
	// Peers is the full membership, including this process.
	Peers []string
	// RunFor bounds the process's life; it exits cleanly afterwards so
	// experiments terminate. Zero means run until crashed or killed.
	RunFor time.Duration
	// HeartbeatEvery is the leader's heartbeat period (default 2 ms).
	HeartbeatEvery time.Duration
	// LeaderTimeout is the follower's crash-detection threshold
	// (default 5x heartbeat).
	LeaderTimeout time.Duration
	// ElectWindow is how long a process collects votes in a round
	// (default 2x leader timeout).
	ElectWindow time.Duration
	// Seed seeds the random vote generator.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Millisecond
	}
	if c.LeaderTimeout <= 0 {
		c.LeaderTimeout = 5 * c.HeartbeatEvery
	}
	if c.ElectWindow <= 0 {
		c.ElectWindow = 2 * c.LeaderTimeout
	}
}

// Messages on the application bus.
type voteMsg struct {
	Round int
	Value int64
}

type heartbeatMsg struct {
	Leader string
}

// proc is one running election process.
type proc struct {
	cfg Config
	h   *app.Handle
	clk app.Clock
	rng *rand.Rand

	round    int
	votes    map[int]map[string]int64 // round -> voter -> value
	deadline time.Time
	lastHB   time.Time
	leader   string
}

// New builds the instrumented application for one process. Fault actions
// (e.g. app.CrashFault for bfault1) are registered by the caller on the
// returned Instrumented.
func New(cfg Config) *app.Instrumented {
	cfg.setDefaults()
	return app.New(func(h *app.Handle) {
		// Derive a per-process seed by hashing the nickname: distinct
		// processes must draw distinct vote streams even under identical
		// configured seeds, or elections tie forever (§5.2's arbitration
		// assumes independent draws).
		hsh := fnv.New64a()
		hsh.Write([]byte(h.Nickname()))
		p := &proc{
			cfg:   cfg,
			h:     h,
			clk:   h.Clock(),
			rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(hsh.Sum64()))),
			votes: make(map[int]map[string]int64),
		}
		p.run()
	})
}

func (p *proc) run() {
	h := p.h
	if p.cfg.RunFor > 0 {
		p.deadline = p.clk.Now().Add(p.cfg.RunFor)
	} else {
		p.deadline = p.clk.Now().Add(24 * time.Hour)
	}

	if h.Restarted() {
		// §5.5's restarted path: BEGIN -RESTART-> RESTART_SM, then
		// RESTART_DONE -> FOLLOW. A restarted process is always a follower.
		if err := h.NotifyEvent(EvRestart); err != nil {
			return
		}
		h.NotifyEvent(EvRestartDone)
		p.lastHB = p.clk.Now()
		p.followLoop()
		return
	}

	if err := h.NotifyEvent(EvStart); err != nil {
		return
	}
	// Application initialization (peer setup) would happen here.
	h.NotifyEvent(EvInitDone)

	p.electLoop()
}

// electLoop runs election rounds until a leader emerges, then enters the
// corresponding role loop; it returns when the process should exit.
func (p *proc) electLoop() {
	h := p.h
	for p.clk.Now().Before(p.deadline) && !h.Crashed() {
		winner, ok := p.electOnce()
		if !ok {
			return // crashed or killed mid-round
		}
		if winner == "" {
			continue // tie: arbitration repeats (§5.2)
		}
		if winner == h.Nickname() {
			if h.NotifyEvent(EvLeader) != nil {
				return
			}
			if !p.leadLoop() {
				return
			}
		} else {
			if h.NotifyEvent(EvFollower) != nil {
				return
			}
			p.leader = winner
			p.lastHB = p.clk.Now()
			if !p.followLoop() {
				return
			}
		}
	}
}

// electOnce runs one round: broadcast a vote, collect for the window, pick
// the maximum. Returns ("", true) on a tie, (winner, true) on success, and
// ("", false) when the process must stop.
func (p *proc) electOnce() (string, bool) {
	h := p.h
	p.round++
	me := h.Nickname()
	value := p.rng.Int63()
	p.recordVote(p.round, me, value)
	h.Broadcast(voteMsg{Round: p.round, Value: value})

	end := p.clk.Now().Add(p.cfg.ElectWindow)
	for p.clk.Now().Before(end) {
		m, ok := h.WaitMessage(end.Sub(p.clk.Now()))
		if !ok {
			if h.Crashed() {
				return "", false
			}
			select {
			case <-h.Done():
				return "", false
			default:
			}
			break
		}
		switch msg := m.Payload.(type) {
		case voteMsg:
			p.recordVote(msg.Round, m.From, msg.Value)
			if msg.Round > p.round {
				// A peer is ahead (it saw the crash first); catch up by
				// voting in its round too.
				for p.round < msg.Round {
					p.round++
					v := p.rng.Int63()
					p.recordVote(p.round, me, v)
					h.Broadcast(voteMsg{Round: p.round, Value: v})
				}
			}
		case heartbeatMsg:
			// A leader already exists (we joined late): follow it.
			return msg.Leader, true
		}
	}

	votes := p.votes[p.round]
	var winner string
	var best int64 = -1
	tie := false
	for who, v := range votes {
		switch {
		case v > best:
			best, winner, tie = v, who, false
		case v == best:
			tie = true
		}
	}
	if tie {
		return "", true
	}
	return winner, true
}

func (p *proc) recordVote(round int, who string, value int64) {
	m, ok := p.votes[round]
	if !ok {
		m = make(map[string]int64)
		p.votes[round] = m
	}
	m[who] = value
}

// leadLoop broadcasts heartbeats until exit or crash. It returns false
// when the process must stop entirely.
func (p *proc) leadLoop() bool {
	h := p.h
	for p.clk.Now().Before(p.deadline) {
		h.Broadcast(heartbeatMsg{Leader: h.Nickname()})
		if !h.Sleep(p.cfg.HeartbeatEvery) {
			return false // crashed or killed
		}
		// Drain the inbox so vote messages from restarted peers don't pile
		// up; a live leader answers them with its heartbeat.
		for {
			m, ok := p.tryMessage()
			if !ok {
				break
			}
			if _, isVote := m.Payload.(voteMsg); isVote {
				h.Send(m.From, heartbeatMsg{Leader: h.Nickname()})
			}
		}
	}
	return true // clean exit at deadline
}

// followLoop watches for leader heartbeats; on timeout it reports
// LEADER_CRASH and returns true so the caller re-enters the election. It
// returns false when the process must stop entirely.
func (p *proc) followLoop() bool {
	h := p.h
	for p.clk.Now().Before(p.deadline) {
		m, ok := h.WaitMessage(p.cfg.HeartbeatEvery)
		if !ok {
			select {
			case <-h.Done():
				return false
			default:
			}
			if p.clk.Since(p.lastHB) > p.cfg.LeaderTimeout {
				// Leader presumed crashed: rejoin the election (§5.2).
				if h.NotifyEvent(EvLeaderCrash) != nil {
					return false
				}
				return p.reElect()
			}
			continue
		}
		switch msg := m.Payload.(type) {
		case heartbeatMsg:
			p.lastHB = p.clk.Now()
			p.leader = msg.Leader
		case voteMsg:
			// Someone started an election: the leader must be gone.
			p.recordVote(msg.Round, m.From, msg.Value)
			if h.NotifyEvent(EvLeaderCrash) != nil {
				return false
			}
			return p.reElect()
		}
	}
	return true
}

// reElect continues the election loop after LEADER_CRASH; it mirrors
// electLoop but is factored so followLoop can tail-call it.
func (p *proc) reElect() bool {
	p.electLoop()
	return false // electLoop only returns when the process is done
}

func (p *proc) tryMessage() (app.Message, bool) {
	select {
	case m := <-p.h.Inbox():
		return m, true
	default:
		return app.Message{}, false
	}
}
