package election

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultexpr"
	"repro/internal/probe"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

var peers = []string{"black", "green", "yellow"}

func newElectionRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	rt := core.New(core.Config{Logf: t.Logf})
	t.Cleanup(rt.Shutdown)
	rt.AddHost("h1", vclock.ClockConfig{})
	rt.AddHost("h2", vclock.ClockConfig{Offset: 2e6, DriftPPM: 60})
	rt.AddHost("h3", vclock.ClockConfig{Offset: -1e6, DriftPPM: -30})
	return rt
}

func registerAll(t *testing.T, rt *core.Runtime, cfg Config, faults map[string][]faultexpr.Spec, instrument func(nick string, in *probe.Instrumented)) {
	t.Helper()
	for i, nick := range peers {
		cfg := cfg
		cfg.Peers = peers
		cfg.Seed = int64(i + 1)
		in := New(cfg)
		if instrument != nil {
			instrument(nick, in)
		}
		err := rt.Register(core.NodeDef{
			Nickname: nick,
			Spec:     SpecFor(nick, peers),
			Faults:   faults[nick],
			App:      in,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func startAll(t *testing.T, rt *core.Runtime) {
	t.Helper()
	hosts := []string{"h1", "h2", "h3"}
	for i, nick := range peers {
		if _, err := rt.StartNode(nick, hosts[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// statesOf extracts the sequence of states a machine passed through.
func statesOf(tl *timeline.Local) []string {
	var out []string
	for _, e := range tl.Entries {
		if e.Kind == timeline.StateChange {
			out = append(out, e.NewState)
		}
	}
	return out
}

func leadersIn(rt *core.Runtime) []string {
	var leaders []string
	for _, nick := range peers {
		tl := rt.Store().Get(nick)
		if tl == nil {
			continue
		}
		for _, s := range statesOf(tl) {
			if s == StLead {
				leaders = append(leaders, nick)
				break
			}
		}
	}
	return leaders
}

func TestElectionProducesOneLeader(t *testing.T) {
	rt := newElectionRuntime(t)
	registerAll(t, rt, Config{RunFor: 120 * time.Millisecond}, nil, nil)
	startAll(t, rt)
	if !rt.Wait(10 * time.Second) {
		t.Fatal("experiment timed out")
	}
	leaders := leadersIn(rt)
	if len(leaders) != 1 {
		t.Fatalf("leaders = %v, want exactly one", leaders)
	}
	// All three must have gone BEGIN->INIT->ELECT and ended in EXIT.
	for _, nick := range peers {
		states := statesOf(rt.Store().Get(nick))
		if len(states) < 3 || states[0] != StInit || states[1] != StElect {
			t.Errorf("%s states = %v", nick, states)
		}
		if states[len(states)-1] != spec.StateExit {
			t.Errorf("%s did not exit cleanly: %v", nick, states)
		}
	}
}

func TestLeaderCrashTriggersReElection(t *testing.T) {
	rt := newElectionRuntime(t)
	// §5.4's first evaluation: every process carries an always-mode crash
	// fault on its own LEAD state; whoever leads first gets killed.
	faults := map[string][]faultexpr.Spec{}
	for _, nick := range peers {
		faults[nick] = []faultexpr.Spec{{
			Name: string(nick[0]) + "fault1",
			Expr: faultexpr.MustParse("(" + nick + ":LEAD)"),
			Mode: faultexpr.Once, // once: otherwise the second leader dies too
		}}
	}
	registerAll(t, rt, Config{RunFor: 250 * time.Millisecond}, faults,
		func(nick string, in *probe.Instrumented) {
			in.On(string(nick[0])+"fault1", probe.CrashFault())
		})
	startAll(t, rt)
	if !rt.Wait(10 * time.Second) {
		t.Fatal("experiment timed out")
	}

	// Every process that reached LEAD must have been crashed by its fault,
	// and the crash cascade proves re-election: at least two distinct
	// machines led during the run.
	var crashed, led []string
	for _, nick := range peers {
		states := statesOf(rt.Store().Get(nick))
		for _, s := range states {
			if s == spec.StateCrash {
				crashed = append(crashed, nick)
				break
			}
		}
		for _, s := range states {
			if s == StLead {
				led = append(led, nick)
				break
			}
		}
	}
	if len(led) < 2 {
		t.Fatalf("led = %v; re-election never happened", led)
	}
	if len(crashed) != len(led) {
		t.Fatalf("led = %v but crashed = %v; a leader survived its crash fault", led, crashed)
	}
	// Each crashed machine's timeline must record exactly one injection.
	for _, nick := range crashed {
		if inj := rt.Store().Get(nick).Injections(); len(inj) != 1 {
			t.Fatalf("injections on %s = %+v", nick, inj)
		}
	}
	// Survivors saw LEADER_CRASH: their timelines show FOLLOW -> ELECT.
	reElected := false
	for _, nick := range peers {
		if nick == crashed[0] {
			continue
		}
		states := statesOf(rt.Store().Get(nick))
		for i := 1; i < len(states); i++ {
			if states[i-1] == StFollow && states[i] == StElect {
				reElected = true
			}
		}
	}
	if !reElected {
		t.Error("no follower re-entered ELECT after the leader crash")
	}
}

func TestCrashedProcessRestartsAsFollower(t *testing.T) {
	rt := newElectionRuntime(t)
	faults := map[string][]faultexpr.Spec{}
	for _, nick := range peers {
		faults[nick] = []faultexpr.Spec{{
			Name: "crashLead",
			Expr: faultexpr.MustParse("(" + nick + ":LEAD)"),
			Mode: faultexpr.Once,
		}}
	}
	registerAll(t, rt, Config{RunFor: 300 * time.Millisecond}, faults,
		func(nick string, in *probe.Instrumented) {
			in.On("crashLead", probe.CrashFault())
		})
	startAll(t, rt)

	// Supervise: when a node crashes, restart it once on a different host.
	deadline := time.Now().Add(5 * time.Second)
	restarted := ""
	for restarted == "" && time.Now().Before(deadline) {
		for _, nick := range peers {
			if rt.Node(nick) != nil {
				continue
			}
			tl := rt.SnapshotTimeline(nick)
			if tl == nil {
				continue
			}
			if last, ok := tl.LastState(); ok && last == spec.StateCrash {
				if _, err := rt.StartNode(nick, "h1"); err == nil {
					restarted = nick
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	if restarted == "" {
		t.Fatal("no crash observed to restart")
	}
	if !rt.Wait(10 * time.Second) {
		t.Fatal("experiment timed out")
	}

	states := statesOf(rt.Store().Get(restarted))
	// The combined timeline must show ... CRASH, RESTART_SM, FOLLOW ...
	idxCrash, idxRestart, idxFollow := -1, -1, -1
	for i, s := range states {
		switch s {
		case spec.StateCrash:
			if idxCrash < 0 {
				idxCrash = i
			}
		case StRestartSM:
			idxRestart = i
		case StFollow:
			if idxRestart >= 0 && idxFollow < 0 && i > idxRestart {
				idxFollow = i
			}
		}
	}
	if idxCrash < 0 || idxRestart < idxCrash || idxFollow < idxRestart {
		t.Fatalf("restart sequence wrong: %v", states)
	}
}

func TestSpecForMatchesThesisShape(t *testing.T) {
	m := SpecFor("black", peers)
	if len(m.GlobalStates) != 8 {
		t.Errorf("global states = %v", m.GlobalStates)
	}
	if next, ok := m.Next(StElect, EvLeader); !ok || next != StLead {
		t.Errorf("ELECT+LEADER -> %q, %v", next, ok)
	}
	if next, ok := m.Next(StFollow, EvLeaderCrash); !ok || next != StElect {
		t.Errorf("FOLLOW+LEADER_CRASH -> %q, %v", next, ok)
	}
	if next, ok := m.Next(spec.StateBegin, EvRestart); !ok || next != StRestartSM {
		t.Errorf("BEGIN+RESTART -> %q, %v", next, ok)
	}
	nl := m.NotifyList(spec.StateCrash)
	if len(nl) != 2 || nl[0] != "green" || nl[1] != "yellow" {
		t.Errorf("CRASH notify = %v", nl)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}
