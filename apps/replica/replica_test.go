package replica

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultexpr"
	"repro/internal/probe"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

var peers = []string{"r0", "r1", "r2"}

func newRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	rt := core.New(core.Config{Logf: t.Logf})
	t.Cleanup(rt.Shutdown)
	for _, h := range []string{"h1", "h2", "h3"} {
		rt.AddHost(h, vclock.ClockConfig{})
	}
	return rt
}

type replicaSetup struct {
	regions map[string]*probe.MemoryRegion
}

func registerReplicas(t *testing.T, rt *core.Runtime, runFor time.Duration,
	faults map[string][]faultexpr.Spec,
	instrument func(nick string, in *probe.Instrumented, region *probe.MemoryRegion)) *replicaSetup {
	t.Helper()
	setup := &replicaSetup{regions: make(map[string]*probe.MemoryRegion)}
	for _, nick := range peers {
		region := probe.NewMemoryRegion(make([]byte, 8))
		setup.regions[nick] = region
		in := New(Config{Peers: peers, RunFor: runFor, Region: region})
		if instrument != nil {
			instrument(nick, in, region)
		}
		if err := rt.Register(core.NodeDef{
			Nickname: nick,
			Spec:     SpecFor(nick, peers),
			Faults:   faults[nick],
			App:      in,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return setup
}

func startAll(t *testing.T, rt *core.Runtime) {
	t.Helper()
	for i, nick := range peers {
		if _, err := rt.StartNode(nick, []string{"h1", "h2", "h3"}[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func statesOf(tl *timeline.Local) []string {
	var out []string
	for _, e := range tl.Entries {
		if e.Kind == timeline.StateChange {
			out = append(out, e.NewState)
		}
	}
	return out
}

func TestReplicationProgress(t *testing.T) {
	rt := newRuntime(t)
	setup := registerReplicas(t, rt, 100*time.Millisecond, nil, nil)
	startAll(t, rt)
	if !rt.Wait(10 * time.Second) {
		t.Fatal("timeout")
	}
	// r0 (priority 0) was primary; its counter advanced and backups
	// replicated to within a small gap.
	primary := Applied(setup.regions["r0"])
	if primary < 10 {
		t.Fatalf("primary applied only %d updates", primary)
	}
	for _, nick := range []string{"r1", "r2"} {
		backup := Applied(setup.regions[nick])
		if backup == 0 {
			t.Errorf("%s never applied an update", nick)
		}
		if backup > primary {
			t.Errorf("%s ahead of primary: %d > %d", nick, backup, primary)
		}
		if primary-backup > 5 {
			t.Errorf("%s lagging: %d vs %d", nick, backup, primary)
		}
	}
	// Roles: r0 PRIMARY, others BACKUP.
	if states := statesOf(rt.Store().Get("r0")); states[1] != StPrimary {
		t.Errorf("r0 states = %v", states)
	}
	for _, nick := range []string{"r1", "r2"} {
		if states := statesOf(rt.Store().Get(nick)); states[1] != StBackup {
			t.Errorf("%s states = %v", nick, states)
		}
	}
}

func TestFailoverOnPrimaryCrash(t *testing.T) {
	rt := newRuntime(t)
	faults := map[string][]faultexpr.Spec{
		"r0": {{
			Name: "killPrimary",
			Expr: faultexpr.MustParse("(r0:PRIMARY)"),
			Mode: faultexpr.Once,
		}},
	}
	registerReplicas(t, rt, 200*time.Millisecond, faults,
		func(nick string, in *probe.Instrumented, _ *probe.MemoryRegion) {
			if nick == "r0" {
				// Let the primary do some work before dying.
				in.On("killPrimary", probe.DelayedCrashFault(20*time.Millisecond, 0, 1))
			}
		})
	startAll(t, rt)
	if !rt.Wait(10 * time.Second) {
		t.Fatal("timeout")
	}
	if last, _ := rt.Store().Get("r0").LastState(); last != spec.StateCrash {
		t.Fatalf("r0 last state = %q, want CRASH", last)
	}
	// r1, the next in priority, must have promoted.
	promoted := false
	for _, s := range statesOf(rt.Store().Get("r1")) {
		if s == StPrimary {
			promoted = true
		}
	}
	if !promoted {
		t.Fatalf("r1 never promoted: %v", statesOf(rt.Store().Get("r1")))
	}
}

func TestMemoryFaultDetectedAsFailStop(t *testing.T) {
	rt := newRuntime(t)
	faults := map[string][]faultexpr.Spec{
		"r0": {{
			Name: "bitflip",
			Expr: faultexpr.MustParse("(r0:PRIMARY)"),
			Mode: faultexpr.Once,
		}},
	}
	registerReplicas(t, rt, 150*time.Millisecond, faults,
		func(nick string, in *probe.Instrumented, region *probe.MemoryRegion) {
			if nick == "r0" {
				in.On("bitflip", probe.MemoryFault(region, 7))
			}
		})
	startAll(t, rt)
	if !rt.Wait(10 * time.Second) {
		t.Fatal("timeout")
	}
	// The corruption may be masked if the primary's next tick overwrites
	// the region before checking; the check-then-write order makes
	// detection the common case. Accept either detection (EXIT via ERROR)
	// or a masked flip, but require the injection to be recorded.
	tl := rt.Store().Get("r0")
	if len(tl.Injections()) != 1 {
		t.Fatalf("injections = %+v", tl.Injections())
	}
	states := statesOf(tl)
	last := states[len(states)-1]
	if last != spec.StateExit {
		t.Errorf("r0 final state = %q (states %v)", last, states)
	}
}

func TestRestartedReplicaSyncs(t *testing.T) {
	rt := newRuntime(t)
	faults := map[string][]faultexpr.Spec{
		"r2": {{
			Name: "killBackup",
			Expr: faultexpr.MustParse("(r2:BACKUP)"),
			Mode: faultexpr.Once,
		}},
	}
	setup := registerReplicas(t, rt, 250*time.Millisecond, faults,
		func(nick string, in *probe.Instrumented, _ *probe.MemoryRegion) {
			if nick == "r2" {
				in.On("killBackup", probe.DelayedCrashFault(15*time.Millisecond, 0, 2))
			}
		})
	startAll(t, rt)

	// Supervisor: restart r2 on another host once it crashes.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tl := rt.SnapshotTimeline("r2"); tl != nil && rt.Node("r2") == nil {
			if last, ok := tl.LastState(); ok && last == spec.StateCrash {
				if _, err := rt.StartNode("r2", "h1"); err == nil {
					break
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !rt.Wait(10 * time.Second) {
		t.Fatal("timeout")
	}

	states := statesOf(rt.Store().Get("r2"))
	// Must contain CRASH then RESTART_SM then BACKUP.
	seq := []string{spec.StateCrash, StRestartSM, StBackup}
	idx := 0
	for _, s := range states {
		if idx < len(seq) && s == seq[idx] {
			idx++
		}
	}
	if idx != len(seq) {
		t.Fatalf("r2 states = %v, want subsequence %v", states, seq)
	}
	// After syncing, r2's value should be well past zero.
	if v := Applied(setup.regions["r2"]); v == 0 {
		t.Error("restarted replica never caught up")
	}
}

func TestSpecForShape(t *testing.T) {
	m := SpecFor("r0", peers)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if next, ok := m.Next(StBackup, EvPromote); !ok || next != StPrimary {
		t.Errorf("BACKUP+PROMOTE -> %q, %v", next, ok)
	}
	if next, ok := m.Next(spec.StateBegin, EvRestart); !ok || next != StRestartSM {
		t.Errorf("BEGIN+RESTART -> %q, %v", next, ok)
	}
	if nl := m.NotifyList(StPrimary); len(nl) != 2 {
		t.Errorf("PRIMARY notify = %v", nl)
	}
}
