// Package replica implements the second test application of the
// reproduction: a primary-backup replicated counter, the "replication
// scheme" the thesis uses to motivate per-replica state machines (§3.5.3).
//
// One primary applies updates and replicates them to backups; backups
// promote in priority order when the primary falls silent. The replica's
// value lives in an app.MemoryRegion, so memory faults (bit flips) can be
// injected; a replica that detects corruption fails stop through the ERROR
// event — giving campaigns a non-crash error path to measure detection
// latency and coverage on.
//
// The package is written against the public SPI (repro/app) only and
// registers itself as "replica".
package replica

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/app"
)

func init() {
	// Bus messages must survive a socket transport's gob envelope.
	app.RegisterMessage(updateMsg{}, syncReqMsg{})
	app.MustRegister("replica", func(p app.Params) (*app.Instrumented, *app.StateMachine) {
		in := New(Config{Peers: p.Peers, RunFor: p.RunFor})
		return in, SpecFor(p.Nick, p.Peers)
	})
}

// Events of the replica state machine.
const (
	EvStart       = "START"
	EvRolePrimary = "ROLE_PRIMARY"
	EvRoleBackup  = "ROLE_BACKUP"
	EvPromote     = "PROMOTE"
	EvRestart     = "RESTART"
	EvRestartDone = "RESTART_DONE"
	EvError       = "ERROR"
	EvCrash       = "CRASH"
)

// States of the replica state machine.
const (
	StInit      = "INIT"
	StPrimary   = "PRIMARY"
	StBackup    = "BACKUP"
	StRestartSM = "RESTART_SM"
)

// SpecFor builds the replica state machine specification for one node,
// notifying all peers on externally observable states.
func SpecFor(self string, peers []string) *app.StateMachine {
	notify := ""
	for _, p := range peers {
		if p != self {
			notify += " " + p
		}
	}
	doc := fmt.Sprintf(`
global_state_list
  BEGIN
  INIT
  PRIMARY
  BACKUP
  RESTART_SM
  CRASH
  EXIT
end_global_state_list
event_list
  START
  ROLE_PRIMARY
  ROLE_BACKUP
  PROMOTE
  RESTART
  RESTART_DONE
  ERROR
  CRASH
end_event_list

state BEGIN
  START INIT
  RESTART RESTART_SM

state INIT notify%[1]s
  ROLE_PRIMARY PRIMARY
  ROLE_BACKUP BACKUP
  ERROR EXIT

state PRIMARY notify%[1]s
  CRASH CRASH
  ERROR EXIT

state BACKUP notify%[1]s
  PROMOTE PRIMARY
  CRASH CRASH
  ERROR EXIT

state RESTART_SM notify%[1]s
  RESTART_DONE BACKUP
  ERROR EXIT

state CRASH notify%[1]s
state EXIT notify%[1]s
`, notify)
	return app.MustParseSpec(doc)
}

// Config parameterizes one replica.
type Config struct {
	// Peers is the full membership in priority order: the first live peer
	// acts as primary.
	Peers []string
	// RunFor bounds the replica's life for experiment termination.
	RunFor time.Duration
	// TickEvery is the primary's update (and heartbeat) period
	// (default 2 ms).
	TickEvery time.Duration
	// PrimaryTimeout is the base silence threshold before a backup
	// promotes; backup k (in priority order) waits (k+1) timeouts, which
	// staggers takeovers (default 6x TickEvery).
	PrimaryTimeout time.Duration
	// Region, if set, is the memory region holding the replica's value —
	// register an app.MemoryFault against it to inject bit flips. When
	// nil a private region is used.
	Region *app.MemoryRegion
}

func (c *Config) setDefaults() {
	if c.TickEvery <= 0 {
		c.TickEvery = 2 * time.Millisecond
	}
	if c.PrimaryTimeout <= 0 {
		c.PrimaryTimeout = 6 * c.TickEvery
	}
	if c.Region == nil {
		c.Region = app.NewMemoryRegion(make([]byte, 8))
	}
}

// Bus messages.
type updateMsg struct {
	Seq   uint64
	Value uint64
}

type syncReqMsg struct{}

type proc struct {
	cfg     Config
	h       *app.Handle
	clk     app.Clock
	applied uint64 // last applied sequence/value (counter semantics: seq == value)
}

// New builds the instrumented replica application. Crash and memory fault
// actions are registered by the caller on the returned Instrumented.
func New(cfg Config) *app.Instrumented {
	cfg.setDefaults()
	return app.New(func(h *app.Handle) {
		p := &proc{cfg: cfg, h: h, clk: h.Clock()}
		p.run()
	})
}

// Value returns the region's counter interpretation.
func regionValue(r *app.MemoryRegion) uint64 {
	return binary.BigEndian.Uint64(r.Snapshot())
}

func (p *proc) run() {
	h := p.h
	// A (re)started process begins with fresh memory: clear the region so
	// an earlier run's (or earlier experiment's) contents cannot leak in.
	p.cfg.Region.Reset(make([]byte, 8))
	deadline := p.clk.Now().Add(p.cfg.RunFor)
	if p.cfg.RunFor <= 0 {
		deadline = p.clk.Now().Add(24 * time.Hour)
	}

	if h.Restarted() {
		if h.NotifyEvent(EvRestart) != nil {
			return
		}
		// Catch up from the current primary before serving (§3.6.3's
		// "obtains state updates" at the application level).
		h.Broadcast(syncReqMsg{})
		if m, ok := h.WaitMessage(p.cfg.PrimaryTimeout); ok {
			if u, isUpdate := m.Payload.(updateMsg); isUpdate {
				p.apply(u)
			}
		}
		if h.NotifyEvent(EvRestartDone) != nil {
			return
		}
		p.backupLoop(deadline)
		return
	}

	if h.NotifyEvent(EvStart) != nil {
		return
	}
	if p.rank() == 0 {
		if h.NotifyEvent(EvRolePrimary) != nil {
			return
		}
		p.primaryLoop(deadline)
		return
	}
	if h.NotifyEvent(EvRoleBackup) != nil {
		return
	}
	p.backupLoop(deadline)
}

// rank is this replica's position in the priority order.
func (p *proc) rank() int {
	for i, peer := range p.cfg.Peers {
		if peer == p.h.Nickname() {
			return i
		}
	}
	return len(p.cfg.Peers)
}

// apply installs an update into the memory region.
func (p *proc) apply(u updateMsg) {
	if u.Seq <= p.applied {
		return
	}
	p.applied = u.Seq
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, u.Value)
	p.cfg.Region.Reset(b)
}

// corrupted checks the region against the replica's own applied value; a
// mismatch means a memory fault hit, and the replica fails stop (ERROR).
func (p *proc) corrupted() bool {
	return regionValue(p.cfg.Region) != p.applied
}

func (p *proc) primaryLoop(deadline time.Time) {
	h := p.h
	for p.clk.Now().Before(deadline) {
		if !h.Sleep(p.cfg.TickEvery) {
			return
		}
		if p.corrupted() {
			h.Note("primary detected memory corruption; failing stop")
			h.NotifyEvent(EvError)
			return
		}
		p.applied++
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, p.applied)
		p.cfg.Region.Reset(b)
		h.Broadcast(updateMsg{Seq: p.applied, Value: p.applied})
		// Serve sync requests from restarted replicas.
		for {
			m, ok := p.tryMessage()
			if !ok {
				break
			}
			if _, isSync := m.Payload.(syncReqMsg); isSync {
				h.Send(m.From, updateMsg{Seq: p.applied, Value: p.applied})
			}
		}
	}
}

func (p *proc) backupLoop(deadline time.Time) {
	h := p.h
	lastUpdate := p.clk.Now()
	promoteAfter := time.Duration(p.rank()+1) * p.cfg.PrimaryTimeout
	for p.clk.Now().Before(deadline) {
		m, ok := h.WaitMessage(p.cfg.TickEvery)
		if ok {
			// Check for corruption before applying: an incoming update
			// overwrites the region and would mask a probe-injected flip.
			if p.corrupted() {
				h.Note("backup detected memory corruption; failing stop")
				h.NotifyEvent(EvError)
				return
			}
			switch u := m.Payload.(type) {
			case updateMsg:
				p.apply(u)
				lastUpdate = p.clk.Now()
			case syncReqMsg:
				// Only primaries serve syncs; ignore as a backup.
			}
			continue
		}
		select {
		case <-h.Done():
			return
		default:
		}
		if p.clk.Since(lastUpdate) > promoteAfter {
			if h.NotifyEvent(EvPromote) != nil {
				return
			}
			p.primaryLoop(deadline)
			return
		}
	}
}

func (p *proc) tryMessage() (app.Message, bool) {
	select {
	case m := <-p.h.Inbox():
		return m, true
	default:
		return app.Message{}, false
	}
}

// Applied reports a replica's last applied value from its region — a test
// convenience for checking replication progress.
func Applied(region *app.MemoryRegion) uint64 { return regionValue(region) }
