// Package quorum implements the third member of the application zoo: a
// collective-signing round in the style of CoSi/ByzCoin witness cosigning.
// A leader announces a statement to n-1 cosigners, each cosigner returns a
// signature share, and the leader finalizes a collective signature once it
// holds at least ⌈2n/3⌉ shares (its own included); short of quorum it
// aborts the round. Every experiment runs exactly one round, so the
// outcome is a clean protocol verdict: all live participants end in SIGNED
// (liveness) or in ABORT, and a finalized signature below threshold is a
// safety violation a cosigner detects and reports as ERROR.
//
// The protocol's phase structure (ANNOUNCE, COMMIT, QUORUM) is exposed as
// global states, so campaigns can target faults precisely — crash a
// cosigner while it sits in COMMIT, crash the leader in ANNOUNCE, slow the
// commit messages with a latency profile — and measure how often the round
// still signs.
//
// The package is written against the public SPI (repro/app) only and
// registers itself as "quorum".
package quorum

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/app"
)

func init() {
	// Bus messages must survive a socket transport's gob envelope.
	app.RegisterMessage(announceMsg{}, commitMsg{}, finalMsg{}, abortMsg{})
	app.MustRegister("quorum", func(p app.Params) (*app.Instrumented, *app.StateMachine) {
		in := New(Config{Peers: p.Peers, RunFor: p.RunFor})
		return in, SpecFor(p.Nick, p.Peers)
	})
}

// Events of the quorum state machine.
const (
	EvStart       = "START"
	EvAnnounce    = "ANNOUNCE"
	EvCommitted   = "COMMITTED"
	EvQuorum      = "QUORUM"
	EvNoQuorum    = "NO_QUORUM"
	EvFinalize    = "FINALIZE"
	EvAbort       = "ABORT"
	EvRestart     = "RESTART"
	EvRestartDone = "RESTART_DONE"
	EvError       = "ERROR"
	EvCrash       = "CRASH"
)

// States of the quorum state machine.
const (
	StInit      = "INIT"
	StAnnounce  = "ANNOUNCE_PH"
	StCommit    = "COMMIT"
	StQuorum    = "QUORUM_PH"
	StSigned    = "SIGNED"
	StAbort     = "ABORT_PH"
	StRestartSM = "RESTART_SM"
)

// SpecFor builds the quorum state machine specification for one node. The
// same machine serves leader and cosigners: the leader walks INIT →
// ANNOUNCE_PH → QUORUM_PH → SIGNED (or ANNOUNCE_PH → ABORT_PH), a cosigner
// INIT → COMMIT → SIGNED (or → ABORT_PH). Every externally observable
// state notifies all peers, so fault triggers can reference any of them.
func SpecFor(self string, peers []string) *app.StateMachine {
	notify := ""
	for _, p := range peers {
		if p != self {
			notify += " " + p
		}
	}
	doc := fmt.Sprintf(`
global_state_list
  BEGIN
  INIT
  ANNOUNCE_PH
  COMMIT
  QUORUM_PH
  SIGNED
  ABORT_PH
  RESTART_SM
  CRASH
  EXIT
end_global_state_list
event_list
  START
  ANNOUNCE
  COMMITTED
  QUORUM
  NO_QUORUM
  FINALIZE
  ABORT
  RESTART
  RESTART_DONE
  ERROR
  CRASH
end_event_list

state BEGIN
  START INIT
  RESTART RESTART_SM

state INIT notify%[1]s
  ANNOUNCE ANNOUNCE_PH
  COMMITTED COMMIT
  ABORT ABORT_PH
  CRASH CRASH
  ERROR EXIT

state ANNOUNCE_PH notify%[1]s
  QUORUM QUORUM_PH
  NO_QUORUM ABORT_PH
  CRASH CRASH
  ERROR EXIT

state COMMIT notify%[1]s
  FINALIZE SIGNED
  ABORT ABORT_PH
  CRASH CRASH
  ERROR EXIT

state QUORUM_PH notify%[1]s
  FINALIZE SIGNED
  CRASH CRASH
  ERROR EXIT

state SIGNED notify%[1]s
  CRASH CRASH
  ERROR EXIT

state ABORT_PH notify%[1]s
  CRASH CRASH
  ERROR EXIT

state RESTART_SM notify%[1]s
  RESTART_DONE ABORT_PH
  ERROR EXIT

state CRASH notify%[1]s
state EXIT notify%[1]s
`, notify)
	return app.MustParseSpec(doc)
}

// Config parameterizes one quorum participant.
type Config struct {
	// Peers is the full membership; the first peer leads the round.
	Peers []string
	// RunFor bounds the participant's life for experiment termination;
	// after the round resolves it idles in its terminal protocol state so
	// global-state predicates over SIGNED/ABORT_PH have duration.
	RunFor time.Duration
	// AnnounceAfter is how long the leader lets the cosigners settle
	// before announcing (default 2 ms).
	AnnounceAfter time.Duration
	// CommitWindow is how long the leader collects signature shares
	// (default 12 ms).
	CommitWindow time.Duration
	// AnnounceTimeout is how long a cosigner waits for the announcement
	// before giving the round up (default 25 ms).
	AnnounceTimeout time.Duration
	// FinalTimeout is how long a committed cosigner waits for the
	// finalize/abort decision (default 25 ms).
	FinalTimeout time.Duration
}

func (c *Config) setDefaults() {
	if c.AnnounceAfter <= 0 {
		c.AnnounceAfter = 2 * time.Millisecond
	}
	if c.CommitWindow <= 0 {
		c.CommitWindow = 12 * time.Millisecond
	}
	if c.AnnounceTimeout <= 0 {
		c.AnnounceTimeout = 25 * time.Millisecond
	}
	if c.FinalTimeout <= 0 {
		c.FinalTimeout = 25 * time.Millisecond
	}
}

// Threshold is the quorum size for n participants: ⌈2n/3⌉.
func Threshold(n int) int { return (2*n + 2) / 3 }

// Bus messages. One round per experiment, but every message still carries
// the round tag so stale traffic (restarts, chaos-delayed duplicates) is
// recognizably stale.
type announceMsg struct {
	Round int
}

type commitMsg struct {
	Round int
	Share uint64
}

type finalMsg struct {
	Round     int
	Signers   []string
	Aggregate uint64
}

type abortMsg struct {
	Round int
}

// share derives a participant's deterministic signature share for a round —
// a stand-in for the Schnorr commitment in real CoSi.
func share(nick string, round int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", nick, round)
	return h.Sum64()
}

type proc struct {
	cfg Config
	h   *app.Handle
	clk app.Clock
}

// New builds the instrumented quorum participant. Crash fault actions are
// registered by the caller (or the campaign loader) on the returned
// Instrumented.
func New(cfg Config) *app.Instrumented {
	cfg.setDefaults()
	return app.New(func(h *app.Handle) {
		p := &proc{cfg: cfg, h: h, clk: h.Clock()}
		p.run()
	})
}

func (p *proc) run() {
	h := p.h
	deadline := p.clk.Now().Add(p.cfg.RunFor)
	if p.cfg.RunFor <= 0 {
		deadline = p.clk.Now().Add(24 * time.Hour)
	}

	if h.Restarted() {
		// A restarted participant has missed the round: report the restart
		// path and settle in ABORT_PH.
		if h.NotifyEvent(EvRestart) != nil {
			return
		}
		if h.NotifyEvent(EvRestartDone) != nil {
			return
		}
		p.idle(deadline)
		return
	}

	if h.NotifyEvent(EvStart) != nil {
		return
	}
	const round = 1
	if p.isLeader() {
		p.lead(round, deadline)
	} else {
		p.cosign(round, deadline)
	}
}

func (p *proc) isLeader() bool {
	return len(p.cfg.Peers) > 0 && p.cfg.Peers[0] == p.h.Nickname()
}

// lead runs the leader's side of the round: announce, collect shares,
// decide, broadcast the decision.
func (p *proc) lead(round int, deadline time.Time) {
	h := p.h
	n := len(p.cfg.Peers)
	need := Threshold(n)

	if !h.Sleep(p.cfg.AnnounceAfter) {
		return
	}
	if h.NotifyEvent(EvAnnounce) != nil {
		return
	}
	h.Broadcast(announceMsg{Round: round})

	// The leader's own share counts toward the threshold.
	signers := []string{h.Nickname()}
	agg := share(h.Nickname(), round)
	seen := map[string]bool{h.Nickname(): true}

	end := p.clk.Now().Add(p.cfg.CommitWindow)
	for p.clk.Now().Before(end) && len(signers) < n {
		m, ok := h.WaitMessage(end.Sub(p.clk.Now()))
		if !ok {
			if h.Crashed() {
				return
			}
			select {
			case <-h.Done():
				return
			default:
			}
			break
		}
		c, isCommit := m.Payload.(commitMsg)
		if !isCommit || c.Round != round || seen[m.From] {
			continue
		}
		seen[m.From] = true
		signers = append(signers, m.From)
		agg ^= c.Share
	}

	if len(signers) >= need {
		if h.NotifyEvent(EvQuorum) != nil {
			return
		}
		h.Note(fmt.Sprintf("quorum: %d/%d shares (need %d)", len(signers), n, need))
		h.Broadcast(finalMsg{Round: round, Signers: signers, Aggregate: agg})
		if h.NotifyEvent(EvFinalize) != nil {
			return
		}
	} else {
		h.Note(fmt.Sprintf("no quorum: %d/%d shares (need %d)", len(signers), n, need))
		if h.NotifyEvent(EvNoQuorum) != nil {
			return
		}
		h.Broadcast(abortMsg{Round: round})
	}
	p.idle(deadline)
}

// cosign runs a cosigner's side: wait for the announcement, commit a
// share, then follow the leader's decision — checking it for safety.
func (p *proc) cosign(round int, deadline time.Time) {
	h := p.h

	switch p.awaitAnnounce(round) {
	case announceDead:
		return
	case announceTimeout:
		// No announcement: the leader is presumed dead, the round aborts.
		if h.NotifyEvent(EvAbort) != nil {
			return
		}
		p.idle(deadline)
		return
	}

	if h.NotifyEvent(EvCommitted) != nil {
		return
	}
	h.Send(p.cfg.Peers[0], commitMsg{Round: round, Share: share(h.Nickname(), round)})

	end := p.clk.Now().Add(p.cfg.FinalTimeout)
	for p.clk.Now().Before(end) {
		m, ok := h.WaitMessage(end.Sub(p.clk.Now()))
		if !ok {
			if h.Crashed() {
				return
			}
			select {
			case <-h.Done():
				return
			default:
			}
			break
		}
		switch d := m.Payload.(type) {
		case finalMsg:
			if d.Round != round {
				continue
			}
			// Safety check: a collective signature must carry a quorum of
			// shares. A leader finalizing below threshold is a protocol
			// violation, and the cosigner fails stop on it.
			if len(d.Signers) < Threshold(len(p.cfg.Peers)) {
				h.Note(fmt.Sprintf("safety violation: final with %d signers, need %d",
					len(d.Signers), Threshold(len(p.cfg.Peers))))
				h.NotifyEvent(EvError)
				return
			}
			if h.NotifyEvent(EvFinalize) != nil {
				return
			}
			p.idle(deadline)
			return
		case abortMsg:
			if d.Round != round {
				continue
			}
			if h.NotifyEvent(EvAbort) != nil {
				return
			}
			p.idle(deadline)
			return
		}
	}
	// Leader fell silent after the announcement: give the round up.
	if h.NotifyEvent(EvAbort) != nil {
		return
	}
	p.idle(deadline)
}

type announceResult int

const (
	announceOK announceResult = iota
	announceTimeout
	announceDead
)

// awaitAnnounce blocks until the round's announcement, the timeout, or the
// process's death.
func (p *proc) awaitAnnounce(round int) announceResult {
	h := p.h
	end := p.clk.Now().Add(p.cfg.AnnounceTimeout)
	for p.clk.Now().Before(end) {
		m, ok := h.WaitMessage(end.Sub(p.clk.Now()))
		if !ok {
			if h.Crashed() {
				return announceDead
			}
			select {
			case <-h.Done():
				return announceDead
			default:
			}
			return announceTimeout
		}
		if a, isAnnounce := m.Payload.(announceMsg); isAnnounce && a.Round == round {
			return announceOK
		}
	}
	return announceTimeout
}

// idle parks the participant in its terminal protocol state until the
// deadline, so the state has measurable duration and late faults can land.
func (p *proc) idle(deadline time.Time) {
	for p.clk.Now().Before(deadline) {
		if !p.h.Sleep(deadline.Sub(p.clk.Now())) {
			return
		}
	}
}
