package quorum_test

import (
	"context"
	"fmt"
	"testing"

	loki "repro"
	"repro/apps/quorum"
)

func TestThreshold(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {6, 4}, {7, 5}, {9, 6}, {10, 7},
	} {
		if got := quorum.Threshold(tc.n); got != tc.want {
			t.Errorf("Threshold(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// The test campaign is the example's matrix shrunk to its load-bearing
// scenarios: a clean round (baseline, must sign), a below-threshold round
// (two-down, must abort), and an unverifiable injection (quorum-flash,
// analysis must reject). Virtual time makes the runs instant and the
// accepted sets exactly reproducible.
const matrixDoc = `{
  "name": "quorum-test",
  "virtual_time": true,
  "hosts": [
    {"name": "h1"},
    {"name": "h2", "offset_ns": 5000000, "drift_ppm": 80},
    {"name": "h3", "offset_ns": -2000000, "drift_ppm": -45},
    {"name": "h4", "offset_ns": 3500000, "drift_ppm": 120}
  ],
  "sync": {"messages": 10, "transit": "25µs"},
  "matrix": {
    "name": "quorum-test",
    "scenarios": [
      {"name": "baseline"},
      {"name": "two-down", "faults": [
        "c2 c2crash (c2:INIT) once",
        "c3 c3crash (c3:INIT) once"
      ]},
      {"name": "quorum-flash", "faults": ["c1 flash (leader:QUORUM_PH) once"]}
    ],
    "latencies": [{"name": "lan", "local": "20µs", "remote": "150µs"}],
    "seeds": [1],
    "study": {
      "name": "",
      "app": "quorum",
      "nodes": [
        {"name": "leader", "host": "h1"},
        {"name": "c1", "host": "h2"},
        {"name": "c2", "host": "h3"},
        {"name": "c3", "host": "h4"}
      ],
      "experiments": 3,
      "runfor": "90ms",
      "timeout": "10s"
    }
  }
}`

// signMeasure is the declarative quorum coverage measure: 1 when the
// leader entered SIGNED during the experiment, else 0.
func signMeasure(t *testing.T) *loki.StudyMeasure {
	t.Helper()
	pred, err := loki.ParsePredicate("(leader, SIGNED)")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := loki.ParseObservation("count(U, B, START_EXP, END_EXP)")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := loki.ParseSelector("default")
	if err != nil {
		t.Fatal(err)
	}
	m, err := loki.NewStudyMeasure("sign-coverage", loki.Triple{Select: sel, Pred: pred, Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runMatrix(t *testing.T) *loki.MatrixOutcome {
	t.Helper()
	cfg, err := loki.ParseCampaignFile([]byte(matrixDoc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := loki.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res.Matrix
}

func fingerprint(out *loki.MatrixOutcome) string {
	fp := ""
	for _, pr := range out.Points {
		fp += pr.Point.Name() + ":"
		for _, rec := range pr.Study.Records {
			if rec != nil && rec.Accepted {
				fp += fmt.Sprintf("%d,", rec.Index)
			}
		}
		fp += ";"
	}
	return fp
}

// TestQuorumMatrix runs the chaos matrix through the campaign-file path —
// the "app": "quorum" field resolving through the public registry — and
// checks the protocol verdicts and the accept/reject split.
func TestQuorumMatrix(t *testing.T) {
	out := runMatrix(t)
	m := signMeasure(t)

	accepted, total := out.AcceptedTotal()
	if accepted == 0 || accepted == total {
		t.Fatalf("accepted %d/%d: want a nontrivial accepted/rejected split", accepted, total)
	}

	for _, pr := range out.Points {
		globals := pr.Study.AcceptedGlobals()
		signed := 0
		for _, v := range m.ApplyAll(globals) {
			if v > 0 {
				signed++
			}
		}
		switch pr.Point.Scenario.Name {
		case "baseline":
			if len(globals) == 0 {
				t.Errorf("%s: no accepted experiments", pr.Point.Name())
			}
			if signed != len(globals) {
				t.Errorf("%s: liveness: %d/%d accepted rounds signed", pr.Point.Name(), signed, len(globals))
			}
		case "two-down":
			if signed != 0 {
				t.Errorf("%s: safety: %d below-threshold rounds signed", pr.Point.Name(), signed)
			}
		case "quorum-flash":
			// The injection chases a microsecond-lived remote state, so
			// verification must fail and analysis must reject.
			if len(globals) != 0 {
				t.Errorf("%s: %d unverifiable injections accepted", pr.Point.Name(), len(globals))
			}
		}
	}

	if fp, again := fingerprint(out), fingerprint(runMatrix(t)); fp != again {
		t.Errorf("same seeds, different accepted sets:\n  %s\n  %s", fp, again)
	}
}

// TestQuorumOverUDP runs the same application over UDP loopback sockets:
// the SPI's RegisterMessage hook is what lets the quorum payloads cross
// the gob envelope.
func TestQuorumOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket transport in -short mode")
	}
	udp := &loki.CampaignFile{
		Name: "quorum-udp-test",
		Seed: 1,
		Studies: []loki.StudyFile{{
			Name:      "udp-round",
			App:       "quorum",
			Transport: "udp",
			Nodes: []loki.NodeFile{
				{Name: "leader", Host: "h1"},
				{Name: "c1", Host: "h2"},
				{Name: "c2", Host: "h3"},
				{Name: "c3", Host: "h4"},
			},
			Faults:      []string{"c3 c3crash (c3:COMMIT) once"},
			Experiments: 2,
		}},
	}
	s, err := loki.Open(udp)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Campaign.Studies[0]
	if len(sr.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(sr.Records))
	}
	globals := sr.AcceptedGlobals()
	if len(globals) == 0 {
		t.Fatal("no accepted experiments over UDP")
	}
	m := signMeasure(t)
	signed := 0
	for _, v := range m.ApplyAll(globals) {
		if v > 0 {
			signed++
		}
	}
	if signed == 0 {
		t.Errorf("no signed rounds over UDP (accepted %d)", len(globals))
	}
}
