package loki_test

import (
	"strings"
	"testing"
	"time"

	loki "repro"
)

const tinySpec = `
global_state_list
  BEGIN
  RUN
  DONE
  CRASH
  EXIT
end_global_state_list
event_list
  finish
end_event_list
state RUN notify peer
  finish DONE
state DONE notify peer
state CRASH notify peer
state EXIT notify peer
`

// TestPublicAPIEndToEnd drives the whole pipeline through the facade only:
// runtime phase, clock estimation, global timeline, checking, measures.
func TestPublicAPIEndToEnd(t *testing.T) {
	sm, err := loki.ParseStateMachine(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := loki.ParseFaultSpecs("f1 (worker:DONE) once\n")
	if err != nil {
		t.Fatal(err)
	}

	app := loki.Instrument(func(h *loki.Handle) {
		h.NotifyEvent("RUN")
		h.Sleep(10 * time.Millisecond)
		h.NotifyEvent("finish")
		h.Sleep(10 * time.Millisecond)
	}).On("f1", loki.NoteFault())

	peer := loki.Instrument(func(h *loki.Handle) {
		h.NotifyEvent("RUN")
		h.Sleep(25 * time.Millisecond)
	})

	c := &loki.Campaign{
		Name: "api-e2e",
		Hosts: []loki.HostDef{
			{Name: "h1", Clock: loki.ClockConfig{}},
			{Name: "h2", Clock: loki.ClockConfig{Offset: 1e6, DriftPPM: 25}},
		},
		Studies: []*loki.Study{{
			Name: "s1",
			Nodes: []loki.NodeDef{
				{Nickname: "worker", Spec: sm, Faults: faults, App: app},
				{Nickname: "peer", Spec: sm, App: peer},
			},
			Placement: []loki.NodeEntry{
				{Nickname: "worker", Host: "h1"},
				{Nickname: "peer", Host: "h2"},
			},
			Experiments: 2,
			Timeout:     5 * time.Second,
		}},
		Sync: loki.SyncConfig{Messages: 8, Transit: 20 * time.Microsecond},
	}
	out, err := loki.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	study := out.Study("s1")
	if study == nil || len(study.Records) != 2 {
		t.Fatalf("records: %+v", study)
	}
	accepted := study.AcceptedGlobals()
	if len(accepted) == 0 {
		for _, r := range study.Records {
			t.Logf("record %d: completed=%v accepted=%v", r.Index, r.Completed, r.Accepted)
			if r.Report != nil {
				for _, ic := range r.Report.Injections {
					t.Logf("  %s/%s: %v (%s)", ic.Machine, ic.Fault, ic.Correct, ic.Reason)
				}
			}
		}
		t.Fatal("no accepted experiments")
	}

	// Measure: how long did worker spend in DONE?
	pred, err := loki.ParsePredicate("(worker, DONE)")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := loki.ParseObservation("total_duration(T, START_EXP, END_EXP)")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := loki.ParseSelector("default")
	if err != nil {
		t.Fatal(err)
	}
	m, err := loki.NewStudyMeasure("doneTime", loki.Triple{Select: sel, Pred: pred, Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	values := m.ApplyAll(accepted)
	if len(values) != len(accepted) {
		t.Fatalf("values = %v", values)
	}
	for _, v := range values {
		if v < 5 { // worker sat in DONE ~10ms
			t.Errorf("DONE duration = %v ms, want >= 5", v)
		}
	}
	res := loki.SimpleSampling(values)
	if res.Mean() < 5 {
		t.Errorf("mean DONE duration = %v", res.Mean())
	}
}

func TestFacadeParsersAndFormats(t *testing.T) {
	if _, err := loki.ParseFaultExpr("((a:B) & ~(c:D))"); err != nil {
		t.Error(err)
	}
	entries, err := loki.ParseNodeFile("worker h1\npeer\n")
	if err != nil || len(entries) != 2 {
		t.Fatalf("node file: %v %v", entries, err)
	}
	sm, err := loki.ParseStateMachine(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	if !sm.HasGlobalState("RUN") {
		t.Error("spec lost states")
	}
	cov, err := loki.Coverage([]float64{1, 0.5}, []float64{1, 1})
	if err != nil || cov != 0.75 {
		t.Errorf("coverage = %v, %v", cov, err)
	}
}

func TestFacadeTimelineRoundTrip(t *testing.T) {
	rt := loki.NewRuntime(loki.RuntimeConfig{})
	defer rt.Shutdown()
	rt.AddHost("h1", loki.ClockConfig{})
	sm, _ := loki.ParseStateMachine(tinySpec)
	rt.Register(loki.NodeDef{
		Nickname: "worker", Spec: sm,
		App: loki.Instrument(func(h *loki.Handle) {
			h.NotifyEvent("RUN")
			h.NotifyEvent("finish")
		}),
	})
	rt.StartNode("worker", "h1")
	rt.Wait(5 * time.Second)
	text, err := loki.EncodeTimeline(rt.Store().Get("worker"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "local_timeline") {
		t.Errorf("encoded timeline:\n%s", text)
	}
	back, err := loki.DecodeTimeline(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Owner != "worker" || len(back.Entries) == 0 {
		t.Errorf("decoded = %+v", back)
	}
}
