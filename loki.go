// Package loki is a Go reproduction of Loki, the state-driven fault
// injector for distributed systems (R. Chandra, "Loki: A State-Driven Fault
// Injector for Distributed Systems", UIUC CRHC-00-09, 2000; DSN 2000).
//
// Loki injects faults into a distributed system based on a *partial view of
// its global state*: each node's runtime tracks its own state machine plus
// the remote states its fault expressions need, injecting when a Boolean
// expression over (machine:state) atoms goes true. Because notifications
// race with state changes, a post-runtime analysis — off-line clock
// synchronization bounding each host clock's offset and drift, projection
// of all local timelines onto one global timeline, and a conservative
// containment check — verifies that every fault landed in the intended
// global state; experiments with unprovable injections are discarded.
// Surviving experiments feed a measure language (predicates, observation
// functions, subset selections; simple-sampling and stratified campaign
// estimators) that turns timelines into dependability numbers such as
// coverage.
//
// The package is a facade over the internal implementation:
//
//   - Runtime, NodeDef, Handle, App — the runtime phase (thesis ch. 3):
//     virtual hosts with hidden-error clocks, per-host local daemons, a
//     central daemon, dynamic node entry/exit/crash/restart.
//   - Instrumented and the *Fault helpers — probe construction (§3.5.7).
//   - Session, Open, CampaignFile — the one composable entry point: a
//     campaign opened from Go wiring or a declarative campaign.json runs
//     the full three-phase pipeline (§2.3) on any engine (worker pool,
//     scenario matrix, loopback clusters, multi-process members) with
//     cancellation, checkpoint/resume, status, and artifact emission
//     (session.go).
//   - Campaign, Study — the campaign description the Session executes.
//   - ChaosAction, Scenario, Matrix — the chaos subsystem: fault
//     specification entries may name built-in network and host fault
//     actions (partition, drop, delay, duplicate, corrupt, crash,
//     crashrestart, clockstep), and the matrix engine fans one
//     configuration out into {scenarios × latency profiles × seeds}
//     studies across the worker pool (see chaos.go and EXPERIMENTS.md).
//   - ParsePredicate, ParseObservation, StudyMeasure, SimpleSampling,
//     StratifiedWeighted — measure estimation (ch. 4).
//   - EstimateClocks, BuildGlobalTimeline, CheckExperiment — the analysis
//     phase à la carte (§2.5).
//
// A minimal session runs a declarative campaign file end to end:
//
//	s, err := loki.Open("campaign.json", loki.WithWorkers(8))
//	defer s.Close()
//	res, err := s.Run(ctx)
//	fmt.Println(res.Campaign.Study("study1").AcceptanceRate())
//
// The same session API drives hand-wired campaigns — loki.Open(&loki.
// Campaign{...}) — and the runtime layer stays available for bespoke
// testbeds:
//
//	rt := loki.NewRuntime(loki.RuntimeConfig{})
//	rt.AddHost("h1", loki.ClockConfig{})
//	rt.Register(loki.NodeDef{Nickname: "sm1", Spec: spec, App: app})
//	rt.StartNode("sm1", "h1")
//	rt.Wait(time.Second)
//
// See examples/quickstart for a complete program, examples/election for
// the thesis's Chapter 5 campaign, and examples/chaos for a campaign-file
// driven scenario matrix.
package loki

import (
	"repro/internal/core"
	"repro/internal/faultexpr"
	"repro/internal/spec"
	"repro/internal/timeline"
	"repro/internal/vclock"
)

// Runtime-phase types (thesis Chapter 3).
type (
	// Runtime is one Loki testbed: virtual hosts, daemons, and nodes.
	Runtime = core.Runtime
	// RuntimeConfig tunes delays, the watchdog, and logging.
	RuntimeConfig = core.Config
	// NodeDef binds a nickname to its state machine specification, fault
	// specification, and instrumented application.
	NodeDef = core.NodeDef
	// Node is one running component with its attached Loki runtime.
	Node = core.Node
	// Handle is the probe interface instrumented applications call
	// (NotifyEvent, Crash, Send, ...).
	Handle = core.Handle
	// App is an instrumented application: Main plus InjectFault.
	App = core.App
	// AppMessage is an application-bus message.
	AppMessage = core.AppMessage
	// CentralDaemon coordinates experiments over a Runtime.
	CentralDaemon = core.CentralDaemon
	// ExperimentResult is one experiment's runtime-phase output.
	ExperimentResult = core.ExperimentResult
)

// Clock and time types (the virtual multi-host substrate).
type (
	// Ticks is a time value in nanoseconds.
	Ticks = vclock.Ticks
	// ClockConfig is a host clock's hidden error (offset, drift,
	// granularity, jitter).
	ClockConfig = vclock.ClockConfig
	// Clock is a host's local clock.
	Clock = vclock.Clock
	// TimeSource is a physical time base.
	TimeSource = vclock.Source
)

// Specification types (§3.5.3, §3.5.5).
type (
	// StateMachineSpec is a parsed state machine specification.
	StateMachineSpec = spec.StateMachine
	// StateDef is one state's notify list and transition function.
	StateDef = spec.StateDef
	// FaultSpec is one fault: name, Boolean expression, once|always.
	FaultSpec = faultexpr.Spec
	// FaultExpr is a parsed Boolean fault expression.
	FaultExpr = faultexpr.Expr
	// FaultMode is once or always.
	FaultMode = faultexpr.Mode
	// NodeEntry is one node-file line: nickname plus optional auto-start
	// host.
	NodeEntry = spec.NodeEntry
)

// Fault trigger modes.
const (
	Once   = faultexpr.Once
	Always = faultexpr.Always
)

// Reserved state and event names (§3.5.7).
const (
	StateBegin = spec.StateBegin
	StateExit  = spec.StateExit
	StateCrash = spec.StateCrash
)

// Timeline types (§3.5.6).
type (
	// LocalTimeline is one node's recorded history.
	LocalTimeline = timeline.Local
	// TimelineEntry is one local timeline record.
	TimelineEntry = timeline.Entry
	// TimelineStore is the shared timeline repository (the thesis's NFS
	// mount).
	TimelineStore = timeline.Store
)

// NewRuntime creates a testbed runtime.
func NewRuntime(cfg RuntimeConfig) *Runtime { return core.New(cfg) }

// NewCentralDaemon wraps a runtime with experiment coordination (§3.5.1).
func NewCentralDaemon(rt *Runtime) *CentralDaemon { return core.NewCentralDaemon(rt) }

// ParseStateMachine parses the §3.5.3 state machine specification format.
func ParseStateMachine(doc string) (*StateMachineSpec, error) {
	return spec.ParseStateMachine(doc)
}

// ParseFaultSpecs parses a §3.5.5 fault specification document, one
// "<name> <expr> <once|always>" entry per line.
func ParseFaultSpecs(doc string) ([]FaultSpec, error) {
	return faultexpr.ParseSpecs(doc)
}

// ParseFaultExpr parses a Boolean fault expression such as
// "((SM1:ELECT) & (SM2:FOLLOW))".
func ParseFaultExpr(src string) (FaultExpr, error) { return faultexpr.Parse(src) }

// ParseNodeFile parses a §3.5.1 node file.
func ParseNodeFile(doc string) ([]NodeEntry, error) { return spec.ParseNodeFile(doc) }

// AutoNotify derives every machine's notify lists from the studies' fault
// specifications — the automation §5.3 proposes as future work. Call on the
// full node definition set before Register.
func AutoNotify(defs []NodeDef) { core.AutoNotify(defs) }

// EncodeTimeline renders a local timeline in the §3.5.6 file format.
func EncodeTimeline(l *LocalTimeline) (string, error) { return timeline.EncodeString(l) }

// DecodeTimeline parses the §3.5.6 local timeline file format.
func DecodeTimeline(doc string) (*LocalTimeline, error) { return timeline.DecodeString(doc) }
