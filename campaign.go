package loki

import (
	"context"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/probe"
)

// Campaign-pipeline types (§2.3, Fig. 2.1).
type (
	// Campaign is a full fault injection campaign: hosts, studies, sync
	// and analysis configuration.
	Campaign = campaign.Campaign
	// Study is one study: node definitions, placement, experiment count.
	Study = campaign.Study
	// HostDef is a virtual host with its hidden clock error.
	HostDef = campaign.HostDef
	// SyncConfig tunes the synchronization mini-phases.
	SyncConfig = campaign.SyncConfig
	// RestartPolicy configures crash-restart supervision (§3.6.3).
	RestartPolicy = campaign.RestartPolicy
	// CampaignOutcome is a campaign's complete output.
	CampaignOutcome = campaign.Result
	// StudyOutcome aggregates one study's experiments.
	StudyOutcome = campaign.StudyResult
	// ExperimentRecord is one experiment's full record (runtime outcomes,
	// clock bounds, global timeline, analysis verdict).
	ExperimentRecord = campaign.ExperimentRecord
	// StepBound is the estimated magnitude interval of a suspected clock
	// step, from the per-phase convex-hull fits.
	StepBound = campaign.StepBound
	// Checkpoint configures per-experiment record journaling under an
	// artifact directory and — with Resume — restart at the first missing
	// point/experiment instead of rerunning a killed campaign.
	Checkpoint = campaign.Checkpoint
)

// RunCampaign executes every experiment of every study: runtime phase with
// sync mini-phases, then analysis. Experiments run on a worker pool of
// Campaign.Workers executors (default GOMAXPROCS), each with a private
// runtime, and the analysis phase is pipelined behind the runtime phase;
// records land at their experiment index, so results are ordered
// identically however many workers run. Accepted experiments are available
// via StudyOutcome.AcceptedGlobals for measure estimation.
//
// Deprecated: RunCampaign is a thin shim over the Session API and will be
// removed next release. Use Open(c) and Session.Run, which add
// cancellation, status, resume, and artifact emission:
//
//	s, err := loki.Open(c)
//	res, err := s.Run(ctx) // res.Campaign is this function's return
func RunCampaign(c *Campaign) (*CampaignOutcome, error) {
	s, err := Open(c)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Campaign, nil
}

// Probe construction (§3.5.7 and the Chapter 6 probe templates).
type (
	// Instrumented assembles an application body with named fault actions.
	Instrumented = probe.Instrumented
	// FaultAction is one fault's injection behaviour.
	FaultAction = probe.Action
	// MemoryRegion is a probe-corruptible byte region.
	MemoryRegion = probe.MemoryRegion
	// MessageDropper simulates communication faults.
	MessageDropper = probe.MessageDropper
)

// Instrument wraps an application body for fault registration:
//
//	app := loki.Instrument(body).On("bfault1", loki.CrashFault())
func Instrument(body func(h *core.Handle)) *Instrumented { return probe.NewInstrumented(body) }

// CrashFault kills the node on injection.
func CrashFault() FaultAction { return probe.CrashFault() }

// DelayedCrashFault crashes after a dormancy (§1.1) with optional jitter.
func DelayedCrashFault(dormancy, jitter time.Duration, seed int64) FaultAction {
	return probe.DelayedCrashFault(dormancy, jitter, seed)
}

// MemoryFault flips one random bit in region per injection.
func MemoryFault(region *MemoryRegion, seed int64) FaultAction {
	return probe.MemoryFault(region, seed)
}

// NewMemoryRegion allocates a corruptible region.
func NewMemoryRegion(data []byte) *MemoryRegion { return probe.NewMemoryRegion(data) }

// MessageDropFault drops the next n application messages per injection.
func MessageDropFault(d *MessageDropper, n int) FaultAction { return probe.MessageDropFault(d, n) }

// NewMessageDropper creates a communication-fault helper.
func NewMessageDropper(seed int64) *MessageDropper { return probe.NewMessageDropper(seed) }

// CPUFault busy-waits on injection, stalling progress without crashing.
func CPUFault(busy time.Duration) FaultAction { return probe.CPUFault(busy) }

// NoteFault records the injection without perturbing the application.
func NoteFault() FaultAction { return probe.NoteFault() }
