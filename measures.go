package loki

import (
	"repro/internal/analysis"
	"repro/internal/clocksync"
	"repro/internal/measure"
	"repro/internal/observation"
	"repro/internal/predicate"
)

// Analysis-phase types (§2.5).
type (
	// ClockBounds are the convex-hull [alpha-,alpha+] x [beta-,beta+]
	// bounds relating a host clock to the reference clock.
	ClockBounds = clocksync.Bounds
	// StampedMessage is one timestamped synchronization message.
	StampedMessage = clocksync.StampedMessage
	// GlobalTimeline is the single reference timeline of one experiment.
	GlobalTimeline = analysis.Global
	// GlobalEvent is one projected event with conservative time bounds.
	GlobalEvent = analysis.Event
	// Interval is a conservative [lo, hi] reference-time interval.
	Interval = analysis.Interval
	// AnalysisReport is the per-experiment injection-correctness verdict.
	AnalysisReport = analysis.Report
	// CheckOptions tunes analysis strictness.
	CheckOptions = analysis.CheckOptions
)

// Measure-phase types (Chapter 4).
type (
	// Predicate queries a global timeline as a function of time (§4.3.1).
	Predicate = predicate.Expr
	// PVT is a predicate value timeline of steps and impulses.
	PVT = predicate.PVT
	// ObservationFunc reduces a PVT to one value (§4.3.2).
	ObservationFunc = observation.Func
	// ObservationEnv carries the START_EXP/END_EXP macros.
	ObservationEnv = observation.Env
	// Selector is a subset selection over observation values (§4.3.3).
	Selector = measure.Selector
	// Triple is one (subset selection, predicate, observation function)
	// stage.
	Triple = measure.Triple
	// StudyMeasure is an ordered triple sequence (§4.3.4).
	StudyMeasure = measure.StudyMeasure
	// Moments are the first four sample moments with shape coefficients.
	Moments = measure.Moments
	// CampaignResult is a campaign-level estimate (§4.4).
	CampaignResult = measure.CampaignResult
)

// EstimateClocks computes per-host clock bounds relative to ref from raw
// synchronization messages (§2.5). The true offset and drift are always
// inside the returned bounds, given positive delays and linear drift.
func EstimateClocks(msgs []StampedMessage, ref string) (map[string]ClockBounds, error) {
	return clocksync.EstimateAll(msgs, ref)
}

// BuildGlobalTimeline projects local timelines onto the reference timeline
// through the per-host bounds (§2.5).
func BuildGlobalTimeline(ref string, bounds map[string]ClockBounds, locals []*LocalTimeline) (*GlobalTimeline, error) {
	return analysis.Build(ref, bounds, locals)
}

// CheckExperiment verifies every recorded injection conservatively; only
// accepted experiments should enter measure estimation (§2.5).
func CheckExperiment(g *GlobalTimeline, specs map[string][]FaultSpec, opts CheckOptions) *AnalysisReport {
	return analysis.CheckExperiment(g, specs, opts)
}

// FaultSpecsOf extracts per-machine fault specifications from timelines,
// in the form CheckExperiment consumes.
func FaultSpecsOf(locals []*LocalTimeline) map[string][]FaultSpec {
	return analysis.SpecsFromLocals(locals)
}

// ParsePredicate parses a §4.3.1 predicate such as
// "((SM1, State1, 10 < t < 20) | (SM2, State2, 30 < t < 40))".
func ParsePredicate(src string) (Predicate, error) { return predicate.Parse(src) }

// EvaluatePredicate computes a predicate value timeline over a global
// timeline.
func EvaluatePredicate(p Predicate, g *GlobalTimeline) PVT { return predicate.Evaluate(p, g) }

// ParseObservation parses a §4.3.2 observation function such as
// "count(U, B, 10, 35)" or "total_duration(T, START_EXP, END_EXP)".
func ParseObservation(src string) (ObservationFunc, error) { return observation.Parse(src) }

// ParseSelector parses a subset selection: "default", "(OBS_VALUE > 0)",
// or "(a <= OBS_VALUE <= b)".
func ParseSelector(src string) (Selector, error) { return measure.ParseSelector(src) }

// NewStudyMeasure builds a validated study measure from triples (§4.3.4).
func NewStudyMeasure(name string, triples ...Triple) (*StudyMeasure, error) {
	return measure.NewStudyMeasure(name, triples...)
}

// ComputeMoments computes the first four moments, skewness, and kurtosis
// of a sample (§4.4.1).
func ComputeMoments(values []float64) Moments { return measure.ComputeMoments(values) }

// SimpleSampling pools all studies' observation values into one sample
// (§4.4.1).
func SimpleSampling(studies ...[]float64) CampaignResult {
	return measure.SimpleSampling(studies...)
}

// StratifiedWeighted combines per-study moments with normalized weights
// (§4.4.2).
func StratifiedWeighted(studies [][]float64, weights []float64) (CampaignResult, error) {
	return measure.StratifiedWeighted(studies, weights)
}

// StratifiedUser combines per-study means with an arbitrary function
// (§4.4.3); the thesis cautions the result may have no statistical meaning.
func StratifiedUser(studies [][]float64, fn func(studyMeans []float64) float64) (CampaignResult, error) {
	return measure.StratifiedUser(studies, fn)
}

// Coverage is the §5.8 stratified-weighted overall coverage:
// sum(w_i*c_i)/sum(w_i).
func Coverage(coverages, rates []float64) (float64, error) {
	return measure.Coverage(coverages, rates)
}
