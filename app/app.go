// Package app is the public service-provider interface (SPI) for
// applications under study. Loki injects faults based on the application's
// global state machine (thesis §2.2), so the application layer is the
// extension point of the whole system — yet it historically lived under
// internal/, capping the studyable protocols at the two built-ins. This
// package lifts that surface out: everything an instrumented application
// needs — the node body handle, the state-machine specification builder,
// the probe fault actions, and a pluggable registry the campaign-file
// loader consults — as stable public types, with no internal/ import
// required (scripts/forbid_app_internal.sh enforces exactly that for
// apps/ and examples/).
//
// A minimal application registers a builder at init time and becomes
// addressable from any campaign.json "app" field:
//
//	func init() {
//		app.RegisterMessage(pingMsg{})
//		app.MustRegister("pingpong", func(p app.Params) (*app.Instrumented, *app.StateMachine) {
//			return app.New(func(h *app.Handle) { run(h, p) }), specFor(p.Nick, p.Peers)
//		})
//	}
//
// The handle contract is the §3.5.7 probe interface: report local events
// with Handle.NotifyEvent, exchange application messages over the bus
// (Send/Broadcast/WaitMessage), and block only through Handle and Clock
// primitives (Sleep, WaitMessage, Go, Clock.NewWaiter) so the same
// application runs unchanged under virtual time. Bus payload types must be
// announced through RegisterMessage so they survive the cluster transports'
// gob envelope in multi-process campaigns.
//
// apps/election, apps/replica, and apps/quorum are the built-in zoo, all
// registered through this same path.
package app

import (
	"encoding/gob"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/spec"
)

// Handle is the probe's interface to the node runtime — what the
// instrumented application body calls (§3.5.7): NotifyEvent, Note, Crash,
// Sleep, the application bus (Send/Broadcast/Inbox/WaitMessage), and the
// runtime clock.
type Handle = core.Handle

// Message is one application-bus message: the sending node's nickname plus
// the payload. Payload types crossing process boundaries must be
// registered with RegisterMessage.
type Message = core.AppMessage

// Clock is the runtime's scheduling clock. Applications must take
// timestamps and measure elapsed time through it — never the time package —
// so they run unchanged under virtual time.
type Clock = clock.Clock

// Instrumented is an application assembled from a body and named fault
// actions: the core.App the runtime drives (§3.5.7).
type Instrumented = probe.Instrumented

// Action is one fault's injection behaviour, registered on an Instrumented
// via On.
type Action = probe.Action

// StateMachine is a parsed state machine specification (§3.5.3): the
// global state list, this machine's events, and per-state notify lists and
// transitions.
type StateMachine = spec.StateMachine

// Reserved state and event names (§3.5.7). BEGIN is every machine's
// implicit initial state; CRASH/EXIT/RESTART are entered by the runtime.
const (
	StateBegin   = spec.StateBegin
	StateExit    = spec.StateExit
	StateCrash   = spec.StateCrash
	StateRestart = spec.StateRestart

	EventCrash   = spec.EventCrash
	EventRestart = spec.EventRestart
	EventDefault = spec.EventDefault
)

// New wraps an application body into an Instrumented. Fault actions are
// registered on the result with On; unregistered faults fall back to a
// timeline note (or the OnUnknown hook).
func New(body func(h *Handle)) *Instrumented { return probe.NewInstrumented(body) }

// ParseSpec parses the §3.5.3 state machine specification format.
func ParseSpec(doc string) (*StateMachine, error) { return spec.ParseStateMachine(doc) }

// MustParseSpec is ParseSpec for specifications assembled in code, where a
// parse error is a bug in the application, not bad input.
func MustParseSpec(doc string) *StateMachine {
	m, err := spec.ParseStateMachine(doc)
	if err != nil {
		panic("app: invalid state machine specification: " + err.Error())
	}
	return m
}

// RegisterMessage announces application-bus payload types to the cluster
// transports' gob envelope, so user payloads survive socket hops in
// multi-process campaigns exactly like the built-ins'. Call it from the
// application package's init with one zero value per concrete payload
// type. Registering the same type again is harmless; two different types
// with the same name panic, matching encoding/gob.
func RegisterMessage(payloads ...interface{}) {
	for _, p := range payloads {
		gob.Register(p)
	}
}

// Probe building blocks (§3.5.7), re-exported so applications need no
// internal/probe import.

// MemoryRegion is a probe-managed byte region that memory faults corrupt.
type MemoryRegion = probe.MemoryRegion

// NewMemoryRegion allocates a region with the given contents.
func NewMemoryRegion(data []byte) *MemoryRegion { return probe.NewMemoryRegion(data) }

// MessageDropper simulates communication faults at the application layer.
type MessageDropper = probe.MessageDropper

// NewMessageDropper creates a dropper with the given random seed.
func NewMessageDropper(seed int64) *MessageDropper { return probe.NewMessageDropper(seed) }

// CrashFault is the classic crash fault: the process dies on injection.
func CrashFault() Action { return probe.CrashFault() }

// DelayedCrashFault crashes after a dormancy period with optional jitter
// (§1.1 fault-to-error dormancy).
func DelayedCrashFault(dormancy, jitter time.Duration, seed int64) Action {
	return probe.DelayedCrashFault(dormancy, jitter, seed)
}

// MemoryFault flips one random bit in the region on every injection.
func MemoryFault(region *MemoryRegion, seed int64) Action { return probe.MemoryFault(region, seed) }

// MessageDropFault drops the next n messages after each injection.
func MessageDropFault(d *MessageDropper, n int) Action { return probe.MessageDropFault(d, n) }

// MessageLossRateFault sets a persistent loss probability on injection.
func MessageLossRateFault(d *MessageDropper, p float64) Action {
	return probe.MessageLossRateFault(d, p)
}

// CPUFault holds the node hostage for the duration; the node stays alive
// but stops making progress.
func CPUFault(busy time.Duration) Action { return probe.CPUFault(busy) }

// NoteFault only records the injection — for dry-run campaigns.
func NoteFault() Action { return probe.NoteFault() }
