package app

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Params carries everything the campaign-file loader knows about one
// machine when it builds an application instance: the machine's nickname,
// the study's full membership, the configured run bound, and the seed for
// this machine's randomness. The seed is already offset per machine (the
// study seed plus a per-index stride), so distinct machines draw distinct
// streams under one configured study seed.
type Params struct {
	// Nick is this machine's state-machine nickname.
	Nick string
	// Peers is the study's full membership in node-file order, this
	// machine included.
	Peers []string
	// RunFor bounds the application's life; it should exit cleanly
	// afterwards so experiments terminate.
	RunFor time.Duration
	// Seed drives this machine's randomness.
	Seed int64
}

// Builder constructs one machine of an application under study: its
// instrumented body and its state machine specification. The campaign-file
// loader calls it once per node per experiment, so every experiment runs
// fresh instances.
type Builder func(p Params) (*Instrumented, *StateMachine)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Builder)
)

// Register adds an application to the registry under name, making it
// addressable from any campaign.json "app" field. It errors on an empty
// name, a nil builder, or a duplicate registration — an application name is
// part of a campaign file's meaning and must resolve to exactly one
// builder for the life of the process.
func Register(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("app: Register with empty name")
	}
	if b == nil {
		return fmt.Errorf("app: Register(%q) with nil builder", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("app: application %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package init paths, where a registration
// error is a programming bug.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err.Error())
	}
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names lists every registered application, sorted — the single source of
// truth for "unknown app" diagnostics, so the error text can never drift
// from what is actually registered.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
