package app_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/app"
	_ "repro/apps/election"
	_ "repro/apps/quorum"
	_ "repro/apps/replica"
)

func dummyBuilder(p app.Params) (*app.Instrumented, *app.StateMachine) {
	sm := app.MustParseSpec(`
global_state_list
  BEGIN
  RUN
  EXIT
end_global_state_list
event_list
  START
end_event_list

state BEGIN
  START RUN

state RUN
`)
	return app.New(func(h *app.Handle) {}), sm
}

func TestRegisterErrorPaths(t *testing.T) {
	if err := app.Register("", dummyBuilder); err == nil {
		t.Error("Register with empty name succeeded, want error")
	}
	if err := app.Register("t-nil", nil); err == nil {
		t.Error("Register with nil builder succeeded, want error")
	}
	if _, ok := app.Lookup("t-nil"); ok {
		t.Error("nil-builder registration landed in the registry")
	}
	if err := app.Register("t-dup", dummyBuilder); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	err := app.Register("t-dup", dummyBuilder)
	if err == nil {
		t.Fatal("duplicate Register succeeded, want error")
	}
	if !strings.Contains(err.Error(), "t-dup") {
		t.Errorf("duplicate error %q does not name the app", err)
	}
	if _, ok := app.Lookup("t-dup"); !ok {
		t.Error("registered app not found by Lookup")
	}
	if _, ok := app.Lookup("t-never-registered"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	app.MustRegister("t-must", dummyBuilder)
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on a duplicate did not panic")
		}
	}()
	app.MustRegister("t-must", dummyBuilder)
}

func TestNamesSortedAndComplete(t *testing.T) {
	app.MustRegister("t-zz-names", dummyBuilder)
	app.MustRegister("t-aa-names", dummyBuilder)
	names := app.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"t-aa-names", "t-zz-names", "election", "replica", "quorum"} {
		if !have[want] {
			t.Errorf("Names() = %v is missing %q", names, want)
		}
	}
}

func TestRegisterConcurrent(t *testing.T) {
	// Concurrent registration and reads must be race-free (run under
	// -race) and every unique name must land exactly once.
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = app.Register(fmt.Sprintf("t-conc-%d", i%16), dummyBuilder)
			app.Names()
			app.Lookup("t-conc-0")
		}(i)
	}
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != 16 {
		t.Errorf("16 duplicate registrations should fail, got %d failures", failed)
	}
}

func TestRegisterMessageIdempotent(t *testing.T) {
	type probeMsg struct{ N int }
	app.RegisterMessage(probeMsg{})
	app.RegisterMessage(probeMsg{}) // same type again must not panic
}
