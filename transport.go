package loki

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/transport"
)

// Pluggable transport layer: the same studies run on the in-memory bus
// (the fast default), over UDP datagrams, or over TCP streams with
// length-prefixed framing — within one process (loopback clusters, one
// runtime per host) or across real OS processes (cmd/lokid -listen).
type (
	// Transport moves host-addressed frames between daemon endpoints.
	Transport = transport.Transport
	// TransportMessage is one frame crossing a transport.
	TransportMessage = transport.Message
	// TransportTopology says which peer endpoint owns which virtual host.
	TransportTopology = transport.Topology
	// ClusterMember is one endpoint of a clustered study: a private
	// runtime hosting its local virtual hosts, following (or, for the
	// reference host's owner, coordinating) the experiment protocol.
	ClusterMember = campaign.Member
)

// Transport kind names accepted by Study.Transport and the cluster
// builders.
const (
	TransportInproc = transport.KindNameInproc
	TransportUDP    = transport.KindNameUDP
	TransportTCP    = transport.KindNameTCP
)

// NewUDPTransport creates a UDP endpoint for the topology (listening on
// the local peer's address when started).
func NewUDPTransport(topo TransportTopology) (Transport, error) { return transport.NewUDP(topo) }

// NewTCPTransport creates a TCP endpoint for the topology.
func NewTCPTransport(topo TransportTopology) (Transport, error) { return transport.NewTCP(topo) }

// NewLoopbackCluster builds one connected transport endpoint per peer of
// the hosts→peer mapping, over 127.0.0.1 ephemeral ports (or direct
// calls, for inproc).
func NewLoopbackCluster(kind string, hosts map[string]string) (map[string]Transport, error) {
	return transport.NewLoopbackCluster(kind, hosts)
}

// NewClusterMember builds one endpoint's member for a clustered study.
// The member owning the lexicographically first host coordinates
// (Member.Coordinator) and drives RunStudy; the others Serve.
func NewClusterMember(c *Campaign, st *Study, tr Transport) (*ClusterMember, error) {
	return campaign.NewMember(c, st, tr)
}

// RunClusteredStudy executes the study with every campaign host in its
// own runtime, connected over the named transport kind on loopback —
// Study.Transport does the same through a Session's Run.
//
// Deprecated: RunClusteredStudy is a thin shim over the Session API and
// will be removed next release. Set Study.Transport and open a Session:
//
//	st.Transport = loki.TransportUDP
//	s, err := loki.Open(c) // c.Studies = []*loki.Study{st}
//	res, err := s.Run(ctx)
func RunClusteredStudy(c *Campaign, st *Study, kind string) (*StudyOutcome, error) {
	if kind == "" || kind == TransportInproc {
		// The multi-endpoint in-process topology is a test-only corner;
		// the engines route "inproc" to the worker pool. Reach it via
		// NewClusterMember when endpoint boundaries matter.
		return campaign.RunClustered(c, st, kind)
	}
	cc := *c
	stc := *st
	stc.Transport = kind
	cc.Studies = []*Study{&stc}
	s, err := Open(&cc, WithTransport(kind))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	sr := res.Campaign.Study(stc.Name)
	if sr == nil {
		return nil, fmt.Errorf("loki: clustered study %q produced no result", stc.Name)
	}
	return sr, nil
}
